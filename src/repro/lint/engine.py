"""The lint engine and the ``adam2-lint`` command-line entry point.

v2: project-wide analysis.  The engine parses every file up front,
builds the cross-file :class:`~repro.lint.project.ProjectIndex` (import
graph, function summaries, the obs name registry), then runs the rules —
per-file rules against each module, :class:`ProjectRule` rules against
the module *plus* the shared index.  Findings pass through the inline
``# adam2: noqa[...]`` filter and, when ``--baseline`` is given, the
committed baseline, so only *new* findings gate the exit code.

Output formats: human text, JSON, and SARIF 2.1.0 (``--format sarif``)
for CI code-scanning upload.  ``--jobs N`` (or ``auto``) fans the
per-file phase out over a process pool; the index is plain picklable
data precisely so it can ship to the workers.

Exit status: 0 clean, 1 non-baselined error-severity findings,
2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline, apply_baseline
from repro.lint.project import ProjectIndex, build_project_index
from repro.lint.rules import ALL_RULES, ModuleContext, ProjectRule, Rule, get_rules
from repro.lint.sarif import format_sarif
from repro.lint.suppress import split_suppressed
from repro.lint.violation import LintReport, Violation

__all__ = ["LintEngine", "lint_paths", "lint_source", "main", "resolve_rules"]

#: directories never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".mypy_cache", ".ruff_cache", "build", "dist"}

#: below this many files, process-pool startup costs more than it saves
_MIN_FILES_PER_JOB = 8

def _sort_key(violation: Violation) -> tuple[str, int, int, str]:
    return (violation.path, violation.line, violation.column, violation.code)


def resolve_rules(
    select: set[str] | None = None, ignore: set[str] | None = None
) -> list[Rule]:
    """Instantiate the rule set for a run; unknown codes raise ValueError."""
    rules = get_rules(select)
    if ignore:
        known = {cls.code for cls in ALL_RULES}
        unknown = ignore - known
        if unknown:
            raise ValueError(f"unknown rule codes: {sorted(unknown)}")
        rules = [r for r in rules if r.code not in ignore]
    return rules


class LintEngine:
    """Runs a set of rules over files or source strings."""

    def __init__(self, rules: Sequence[Rule] | None = None):
        self.rules: list[Rule] = list(rules) if rules is not None else get_rules()

    # -- discovery -----------------------------------------------------

    @staticmethod
    def discover(paths: Iterable[str]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for candidate in path.rglob("*.py"):
                    if not _SKIP_DIRS & set(candidate.parts):
                        files.add(candidate)
            elif path.suffix == ".py":
                files.add(path)
        return sorted(files)

    # -- execution -----------------------------------------------------

    def check_source(self, source: str, path: str = "<string>") -> list[Violation]:
        """Lint one source string (exposed for tests and tooling)."""
        module = ModuleContext.from_source(source, path=path)
        return self.check_module(module)

    def check_module(
        self, module: ModuleContext, project: ProjectIndex | None = None
    ) -> list[Violation]:
        """Actionable violations for one module (noqa already applied)."""
        kept, _ = self.check_module_full(module, project)
        return kept

    def check_module_full(
        self, module: ModuleContext, project: ProjectIndex | None = None
    ) -> tuple[list[Violation], list[Violation]]:
        """(kept, noqa-suppressed) violations for one module."""
        violations: list[Violation] = []
        for rule in self.rules:
            if project is not None and isinstance(rule, ProjectRule):
                violations.extend(rule.check_project(module, project))
            else:
                violations.extend(rule.check(module))
        kept, suppressed = split_suppressed(violations, module.source)
        kept.sort(key=_sort_key)
        suppressed.sort(key=_sort_key)
        return kept, suppressed

    def run(self, paths: Iterable[str], jobs: int = 1) -> LintReport:
        report = LintReport()
        paths = list(paths)
        # A typo'd path must not silently pass the lint gate.
        for raw in paths:
            if not Path(raw).exists():
                report.parse_errors.append(f"{raw}: no such file or directory")

        # Phase 1: parse everything, build the cross-file index.
        modules: list[ModuleContext] = []
        for path in self.discover(paths):
            try:
                source = path.read_text(encoding="utf-8")
                modules.append(ModuleContext.from_source(source, path=str(path)))
            except (OSError, SyntaxError, ValueError) as exc:
                report.parse_errors.append(f"{path}: {exc}")
        report.files_checked = len(modules)
        project = build_project_index(modules)

        # Phase 2: per-file rule runs, optionally fanned out.
        if jobs > 1 and len(modules) >= _MIN_FILES_PER_JOB:
            self._run_parallel(modules, project, jobs, report)
        else:
            for module in modules:
                kept, suppressed = self.check_module_full(module, project)
                report.violations.extend(kept)
                report.suppressed.extend(suppressed)

        report.violations.sort(key=_sort_key)
        report.suppressed.sort(key=_sort_key)
        return report

    def _run_parallel(
        self,
        modules: list[ModuleContext],
        project: ProjectIndex,
        jobs: int,
        report: LintReport,
    ) -> None:
        codes = frozenset(r.code for r in self.rules)
        batches: list[list[str]] = [[] for _ in range(jobs)]
        for i, module in enumerate(modules):
            batches[i % jobs].append(module.path)
        batches = [batch for batch in batches if batch]
        try:
            with ProcessPoolExecutor(max_workers=len(batches)) as pool:
                for kept, suppressed in pool.map(
                    _lint_worker,
                    batches,
                    [codes] * len(batches),
                    [project] * len(batches),
                ):
                    report.violations.extend(kept)
                    report.suppressed.extend(suppressed)
        except (OSError, ValueError):  # pragma: no cover - pool unavailable
            for module in modules:
                kept, suppressed = self.check_module_full(module, project)
                report.violations.extend(kept)
                report.suppressed.extend(suppressed)


def _lint_worker(
    paths: list[str], codes: frozenset[str], project: ProjectIndex
) -> tuple[list[Violation], list[Violation]]:
    """Process-pool worker: re-parse a batch of files, run the rules.

    The parent already parsed these files successfully (the index pass),
    so parse failures here are races; they are silently skipped rather
    than double-reported.
    """
    engine = LintEngine(get_rules(set(codes)))
    kept: list[Violation] = []
    suppressed: list[Violation] = []
    for path in paths:
        try:
            source = Path(path).read_text(encoding="utf-8")
            module = ModuleContext.from_source(source, path=path)
        except (OSError, SyntaxError, ValueError):  # pragma: no cover
            continue
        file_kept, file_suppressed = engine.check_module_full(module, project)
        kept.extend(file_kept)
        suppressed.extend(file_suppressed)
    return kept, suppressed


def lint_paths(
    paths: Iterable[str],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    jobs: int = 1,
) -> LintReport:
    """Convenience wrapper: lint files/directories with (a subset of) rules."""
    return LintEngine(resolve_rules(select, ignore)).run(paths, jobs=jobs)


def lint_source(source: str, path: str = "<string>", select: set[str] | None = None) -> list[Violation]:
    """Convenience wrapper: lint one source string."""
    return LintEngine(get_rules(select)).check_source(source, path=path)


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------


def _format_json(report: LintReport) -> str:
    return json.dumps(
        {
            "files_checked": report.files_checked,
            "violations": [v.to_json() for v in report.violations],
            "suppressed": [v.to_json() for v in report.suppressed],
            "baselined": [v.to_json() for v in report.baselined],
            "stale_baseline": report.stale_baseline,
            "codes": report.codes(),
            "parse_errors": report.parse_errors,
            "ok": report.ok,
        },
        indent=2,
    )


def _format_text(report: LintReport, verbose: bool = False) -> str:
    lines = [v.format_text() for v in report.violations]
    lines.extend(f"parse error: {err}" for err in report.parse_errors)
    if verbose:
        lines.extend(f"suppressed (noqa): {v.format_text()}" for v in report.suppressed)
        lines.extend(f"baselined: {v.format_text()}" for v in report.baselined)
        lines.extend(f"stale baseline entry: {entry}" for entry in report.stale_baseline)
    summary = (
        f"{report.files_checked} file(s) checked, "
        f"{len(report.violations)} violation(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} suppressed")
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.stale_baseline:
        extras.append(f"{len(report.stale_baseline)} stale baseline entr(y/ies)")
    if extras:
        summary += f" ({', '.join(extras)})"
    if report.codes():
        summary += f" [{', '.join(report.codes())}]"
    lines.append(summary)
    return "\n".join(lines)


def _list_rules() -> str:
    lines = []
    for cls in ALL_RULES:
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        lines.append(f"{cls.code}  {cls.name}: {doc}")
        if cls.hint:
            lines.append(f"        fix: {cls.hint}")
    return "\n".join(lines)


def _parse_codes(raw: str) -> set[str] | None:
    return {code.strip().upper() for code in raw.split(",") if code.strip()} or None


def _resolve_jobs(raw: str, n_files: int) -> int:
    """``auto`` sizes the pool to the machine *and* the workload: pools
    only pay off with enough files per worker, and on a single-CPU box
    the sequential path is always faster."""
    if raw != "auto":
        return max(1, int(raw))
    cpus = os.cpu_count() or 1
    return max(1, min(cpus, n_files // _MIN_FILES_PER_JOB))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="adam2-lint",
        description=(
            "Protocol-invariant linter for the Adam2 reproduction "
            "(rules ADM001-ADM013)."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json", "sarif"), default="text", dest="fmt")
    parser.add_argument(
        "--select", default="", help="comma-separated rule codes to run (default: all)"
    )
    parser.add_argument(
        "--ignore", default="", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--baseline", default="", metavar="FILE",
        help="baseline file: matching findings are reported but do not fail the run",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the --baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--jobs", default="auto", metavar="N",
        help="parallel worker processes ('auto' sizes to CPUs and file count)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print the resolved rule set and suppressed/baselined accounting",
    )
    parser.add_argument("--list-rules", action="store_true", help="describe every rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_baseline and not args.baseline:
        print("adam2-lint: --update-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    try:
        rules = resolve_rules(_parse_codes(args.select), _parse_codes(args.ignore))
        jobs = _resolve_jobs(args.jobs, len(LintEngine.discover(args.paths)))
    except ValueError as exc:
        print(f"adam2-lint: {exc}", file=sys.stderr)
        return 2

    if args.verbose:
        active = ", ".join(f"{r.code}:{r.name}" for r in rules)
        print(f"rules: {active}", file=sys.stderr)
        print(f"jobs: {jobs}", file=sys.stderr)

    report = LintEngine(rules).run(args.paths, jobs=jobs)

    try:
        if args.update_baseline:
            previous = Baseline.load(args.baseline)
            Baseline.from_violations(report.violations, previous).save(args.baseline)
            print(
                f"baseline updated: {args.baseline} "
                f"({len(report.violations)} finding(s) recorded)"
            )
            return 0
        if args.baseline:
            apply_baseline(report, Baseline.load(args.baseline))
    except (OSError, ValueError) as exc:
        print(f"adam2-lint: {exc}", file=sys.stderr)
        return 2

    if args.fmt == "json":
        print(_format_json(report))
    elif args.fmt == "sarif":
        print(format_sarif(report, rules))
    else:
        print(_format_text(report, verbose=args.verbose))
    if report.parse_errors:
        return 2
    return 0 if not report.errors else 1


if __name__ == "__main__":
    raise SystemExit(main())
