"""Protocol-invariant tooling: static AST linter + runtime sanitizer.

Two layers of machine-checked enforcement of the invariants Adam2's
correctness rests on (see DESIGN.md, "Static analysis & sanitizer"):

* :mod:`repro.lint.engine` — the ``adam2-lint`` AST linter with the
  protocol-specific rules ``ADM001``–``ADM013``: per-file pattern rules
  (``ADM001``–``ADM008``) plus the project-wide concurrency/determinism
  rules (``ADM009``–``ADM013``) that resolve symbols across the import
  graph via :mod:`repro.lint.project`;
* :mod:`repro.lint.sanitizer` — opt-in runtime instrumentation
  (``ADAM2_SANITIZE=1``) asserting mass conservation, weight sanity,
  fraction ranges and CDF monotonicity after every exchange/round in
  all three simulation backends.

The engine supports inline ``# adam2: noqa[ADMxxx]`` suppressions
(:mod:`repro.lint.suppress`), a committed baseline for gradual adoption
(:mod:`repro.lint.baseline`), and SARIF 2.1.0 output for CI
code-scanning (:mod:`repro.lint.sarif`).
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, apply_baseline
from repro.lint.engine import LintEngine, lint_paths, lint_source, resolve_rules
from repro.lint.project import ProjectIndex, build_project_index
from repro.lint.rules import ALL_RULES, get_rules
from repro.lint.sarif import format_sarif, to_sarif
from repro.lint.sanitizer import (
    FastsimSanitizer,
    InvariantViolation,
    SanitizedAsyncProtocol,
    SanitizedProtocol,
    sanitize_enabled,
)
from repro.lint.violation import LintReport, Violation

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FastsimSanitizer",
    "InvariantViolation",
    "LintEngine",
    "LintReport",
    "ProjectIndex",
    "SanitizedAsyncProtocol",
    "SanitizedProtocol",
    "Violation",
    "apply_baseline",
    "build_project_index",
    "format_sarif",
    "get_rules",
    "lint_paths",
    "lint_source",
    "resolve_rules",
    "sanitize_enabled",
    "to_sarif",
]
