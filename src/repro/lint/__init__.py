"""Protocol-invariant tooling: static AST linter + runtime sanitizer.

Two layers of machine-checked enforcement of the invariants Adam2's
correctness rests on (see DESIGN.md, "Static analysis & sanitizer"):

* :mod:`repro.lint.engine` — the ``adam2-lint`` AST linter with the
  protocol-specific rules ``ADM001``–``ADM008``;
* :mod:`repro.lint.sanitizer` — opt-in runtime instrumentation
  (``ADAM2_SANITIZE=1``) asserting mass conservation, weight sanity,
  fraction ranges and CDF monotonicity after every exchange/round in
  all three simulation backends.
"""

from __future__ import annotations

from repro.lint.engine import LintEngine, lint_paths, lint_source
from repro.lint.rules import ALL_RULES, get_rules
from repro.lint.sanitizer import (
    FastsimSanitizer,
    InvariantViolation,
    SanitizedAsyncProtocol,
    SanitizedProtocol,
    sanitize_enabled,
)
from repro.lint.violation import LintReport, Violation

__all__ = [
    "ALL_RULES",
    "FastsimSanitizer",
    "InvariantViolation",
    "LintEngine",
    "LintReport",
    "SanitizedAsyncProtocol",
    "SanitizedProtocol",
    "Violation",
    "get_rules",
    "lint_paths",
    "lint_source",
    "sanitize_enabled",
]
