"""Violation record emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule violation at one source location.

    Attributes:
        code: the rule code (``ADM001`` … ``ADM013``).
        message: what is wrong at this site.
        path: file the violation was found in.
        line: 1-based source line.
        column: 0-based source column.
        hint: how to fix it (the rule's autofix hint, possibly
            specialised to the site).
        severity: ``"error"`` (gates the exit code) or ``"warning"``
            (reported but never fails the run).
    """

    code: str
    message: str
    path: str
    line: int
    column: int = 0
    hint: str = ""
    severity: str = "error"

    def format_text(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        text = f"{self.path}:{self.line}:{self.column + 1}: {self.code}{tag} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def fingerprint(self) -> tuple[str, str, str]:
        """Stable identity used by the baseline (line numbers drift)."""
        return (self.code, self.path.replace("\\", "/"), self.message)

    def to_json(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "hint": self.hint,
            "severity": self.severity,
        }


@dataclass(slots=True)
class LintReport:
    """All violations from one lint run, plus file accounting.

    ``violations`` holds the *actionable* findings: everything that was
    neither suppressed inline (``# adam2: noqa[...]``) nor matched by the
    baseline file.  Suppressed and baselined findings are retained on the
    side so tooling can account for every site the rules flagged.
    """

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    @property
    def errors(self) -> list[Violation]:
        """Non-baselined findings at severity ``error`` (the exit-code gate)."""
        return [v for v in self.violations if v.severity == "error"]

    def codes(self) -> list[str]:
        return sorted({v.code for v in self.violations})
