"""Violation record emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule violation at one source location.

    Attributes:
        code: the rule code (``ADM001`` … ``ADM008``).
        message: what is wrong at this site.
        path: file the violation was found in.
        line: 1-based source line.
        column: 0-based source column.
        hint: how to fix it (the rule's autofix hint, possibly
            specialised to the site).
    """

    code: str
    message: str
    path: str
    line: int
    column: int = 0
    hint: str = ""

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "hint": self.hint,
        }


@dataclass(slots=True)
class LintReport:
    """All violations from one lint run, plus file accounting."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def codes(self) -> list[str]:
        return sorted({v.code for v in self.violations})
