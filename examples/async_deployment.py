#!/usr/bin/env python
"""Adam2 under deployment conditions: real clocks, latency, message loss.

The paper evaluates Adam2 in synchronous simulation rounds; a deployment
has none of that: every node gossips on its own drifting timer, messages
take tens to hundreds of milliseconds, and some are lost.  This example
runs one estimation campaign on the event-driven engine across network
conditions and shows the protocol's accuracy at the interpolation points
surviving all of them — the property that justifies the paper's
round-based evaluation.
"""

import numpy as np

from repro.asyncsim import AsyncAdam2, AsyncEngine, LatencyModel
from repro.core import Adam2Config, EmpiricalCDF
from repro.overlay import FullMeshOverlay
from repro.rngs import make_rng
from repro.workloads import boinc_ram_mb

N_NODES = 500
SCENARIOS = [
    ("datacenter", LatencyModel(0.0005, 0.002), 0.0),
    ("WAN", LatencyModel(0.02, 0.2), 0.0),
    ("lossy WAN (20% loss)", LatencyModel(0.02, 0.2), 0.2),
]


def main() -> None:
    print(f"Adam2 on the event-driven engine — {N_NODES} nodes, 1 s gossip period\n")
    print(f"{'scenario':>22}  {'est.':>5}  {'worst point err':>16}  {'median N^':>9}  {'msgs':>7}")
    for label, latency, loss in SCENARIOS:
        rng = make_rng(17)
        config = Adam2Config(points=30, rounds_per_instance=30)
        protocol = AsyncAdam2(config, scheduler="manual")
        engine = AsyncEngine(
            FullMeshOverlay([]), protocol, rng,
            gossip_period=1.0, period_jitter=0.1, latency=latency, loss_rate=loss,
        )
        engine.populate(boinc_ram_mb().sample(N_NODES, make_rng(18)))
        engine.run_for(2.0)
        protocol.trigger_instance(engine)
        engine.run_for(45.0)

        truth = EmpiricalCDF(engine.attribute_values())
        estimates = protocol.estimates(engine)
        worst = max(
            np.abs(truth.evaluate(e.thresholds) - e.fractions).max()
            for e in estimates[:60]
        )
        sizes = [a.size_estimate for a in protocol.adam2_nodes(engine) if a.current_estimate]
        print(
            f"{label:>22}  {len(estimates):>5}  {worst:>16.2e}  "
            f"{np.median(sizes):>9.0f}  {engine.messages_sent:>7}"
        )
    print(
        "\nCDF accuracy survives every scenario. Note the size estimate's"
        "\nbias under loss: a lost response leaves the responder averaged"
        "\nbut not the initiator, duplicating weight mass — push-pull"
        "\naveraging needs acknowledgements (or FIFO transport) for exact"
        "\ncounting on lossy networks."
    )


if __name__ == "__main__":
    main()
