#!/usr/bin/env python
"""Decentralised load-balance monitoring (the paper's §I motivation).

Every node carries a "load" attribute.  Nodes estimate the global load
distribution with Adam2 and then decide *locally*, with no coordinator:

* whether the system is imbalanced (inter-quartile spread of the
  estimated CDF exceeds a policy threshold), and
* whether they themselves are overloaded relative to the population
  (their own rank under the estimated CDF).

The scenario starts balanced, then a flash crowd hits 20 % of the nodes;
the next aggregation instance lets every node detect the imbalance.
"""

import numpy as np

from repro.core import Adam2Config, Adam2Protocol
from repro.rngs import make_rng
from repro.simulation import build_engine
from repro.workloads.synthetic import normal_workload

N_NODES = 400
IMBALANCE_POLICY = 3.0  # p90/p50 ratio that counts as imbalanced


def report(protocol: Adam2Protocol, engine, label: str) -> None:
    # Pick an arbitrary node's own estimate: the point of Adam2 is that
    # every node holds (nearly) the same global picture.
    node = next(iter(engine.nodes.values()))
    estimate = node.state[protocol.name].current_estimate
    p50 = estimate.quantile(0.5)[0]
    p90 = estimate.quantile(0.9)[0]
    imbalanced = p90 / max(p50, 1e-9) > IMBALANCE_POLICY
    own_load = node.value
    own_rank = estimate.evaluate(np.asarray([own_load]))[0]
    print(f"{label}")
    print(f"  estimated median load : {p50:8.1f}")
    print(f"  estimated p90 load    : {p90:8.1f}")
    print(f"  imbalance detected    : {'YES' if imbalanced else 'no'} (p90/p50 = {p90 / max(p50, 1e-9):.2f})")
    print(f"  node {node.node_id}: own load {own_load:.0f} -> rank {own_rank:.2f} "
          f"({'overloaded' if own_rank > 0.9 else 'normal'})")
    print()


def main() -> None:
    rng = make_rng(7)
    config = Adam2Config(points=30, rounds_per_instance=25, selection="lcut")
    protocol = Adam2Protocol(config, scheduler="manual")
    engine = build_engine(
        normal_workload(mean=100.0, std=15.0), N_NODES, [protocol], rng, overlay="random", degree=12
    )

    print(f"Decentralised load monitoring over {N_NODES} nodes\n")
    protocol.trigger_instance(engine)
    engine.run(config.rounds_per_instance + 1)
    report(protocol, engine, "Phase 1 — balanced system:")

    # Flash crowd: 20 % of nodes suddenly carry 10x load.
    hot = list(engine.nodes.values())[: N_NODES // 5]
    for node in hot:
        node.values = node.values * 10.0
    # Nodes re-evaluate their attribute when they join the next instance.
    protocol.trigger_instance(engine)
    engine.run(config.rounds_per_instance + 1)
    report(protocol, engine, "Phase 2 — after a flash crowd on 20% of nodes:")


if __name__ == "__main__":
    main()
