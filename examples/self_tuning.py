#!/usr/bin/env python
"""Self-tuning accuracy via dynamic confidence estimation (paper §VI).

An application wants the average CDF error below a target *without*
knowing the true distribution.  Each campaign runs with verification
points enabled; the nodes' own accuracy self-assessment (``EstErr_a``)
drives the tuning loop: while the self-estimated error is above target,
double the number of interpolation points and run another instance.  The
ground truth is shown only to audit the loop — the decisions never use it.
"""

import numpy as np

from repro import Adam2Config, Adam2Simulation, boinc_ram_mb

TARGET_AVG_ERROR = 5e-4
MAX_POINTS = 160


def main() -> None:
    points = 20
    print("Self-tuning Adam2 — target EstErr_a <= %.0e\n" % TARGET_AVG_ERROR)
    print(f"{'instance':>8}  {'points':>6}  {'EstErr_a (self)':>16}  {'Err_a (true)':>13}  decision")

    sim = Adam2Simulation(
        workload=boinc_ram_mb(),
        n_nodes=1_000,
        config=Adam2Config(
            points=points,
            rounds_per_instance=30,
            selection="lcut",
            verification_points=20,
            verification_target="average",
        ),
        seed=3,
    )
    for instance_no in range(1, 9):
        result = sim.run_instance(confidence_sample=48)
        self_estimate = float(np.mean(result.est_erra))
        true_error = result.errors_entire.average
        if self_estimate <= TARGET_AVG_ERROR and instance_no > 1:
            print(f"{instance_no:>8}  {points:>6}  {self_estimate:>16.2e}  {true_error:>13.2e}  target met — stop")
            break
        decision = "refine again"
        if self_estimate > TARGET_AVG_ERROR and points < MAX_POINTS and instance_no >= 2:
            points = min(points * 2, MAX_POINTS)
            # Reconfigure: later instances carry more interpolation points.
            sim.config = Adam2Config(
                points=points,
                rounds_per_instance=30,
                selection="lcut",
                verification_points=20,
                verification_target="average",
            )
            decision = f"increase points to {points}"
        print(f"{instance_no:>8}  {points:>6}  {self_estimate:>16.2e}  {true_error:>13.2e}  {decision}")
    else:
        print("\nstopped at the instance budget")


if __name__ == "__main__":
    main()
