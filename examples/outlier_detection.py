#!/usr/bin/env python
"""Decentralised outlier detection from the estimated distribution.

The paper (§I) motivates distribution estimation with defect/intrusion
detection: a node that knows the global distribution of a health metric
can flag values that are globally extreme — not merely extreme among its
direct neighbours.  Here, a small fraction of nodes report corrupted
readings (the faulty-sensor model of §VII); after one Adam2 estimation
campaign every node can classify any reading by its estimated rank.
"""

import numpy as np

from repro import Adam2Config, Adam2Simulation
from repro.rngs import make_rng
from repro.workloads import FaultModel, inject_faults
from repro.workloads.base import SampledWorkload
from repro.workloads.synthetic import lognormal_workload

N_NODES = 1_000
FAULT_RATE = 0.01
TAIL = 0.995  # readings above this estimated rank are flagged


def main() -> None:
    rng = make_rng(21)
    clean = lognormal_workload(median=200.0, sigma=0.6).sample(N_NODES, rng)
    model = FaultModel(rate=FAULT_RATE, absurd_high=1e9, plausible_max=1e7)
    readings = inject_faults(clean, model, rng)
    # NaN readings never make it onto the wire; nodes report their last
    # good value instead.
    readings = np.where(np.isnan(readings), clean, readings)
    truly_faulty = readings != clean

    sim = Adam2Simulation(
        workload=SampledWorkload(readings, name="sensor_reading"),
        n_nodes=N_NODES,
        config=Adam2Config(points=40, rounds_per_instance=30, selection="minmax"),
        seed=5,
    )
    # Pin the population to the actual readings (sampling with
    # replacement would duplicate/drop some).
    sim.values = readings.copy()
    estimate = sim.run_instances(3).estimate

    ranks = estimate.evaluate(sim.values)
    flagged = ranks > TAIL
    negative = sim.values < 0  # impossible readings: flag outright
    flagged |= negative

    tp = int((flagged & truly_faulty).sum())
    fp = int((flagged & ~truly_faulty).sum())
    fn = int((~flagged & truly_faulty).sum())
    print(f"Decentralised outlier detection over {N_NODES} nodes")
    print(f"  corrupted readings injected : {int(truly_faulty.sum())}")
    print(f"  flagged by estimated rank   : {int(flagged.sum())}")
    print(f"  true positives              : {tp}")
    print(f"  false positives             : {fp}")
    print(f"  missed                      : {fn}")
    print()
    print("  example classifications:")
    for idx in np.flatnonzero(truly_faulty)[:3]:
        print(f"    node {idx}: reading {sim.values[idx]:.3g} -> rank {ranks[idx]:.4f} (flagged)")
    for idx in np.flatnonzero(~truly_faulty)[:3]:
        print(f"    node {idx}: reading {sim.values[idx]:.3g} -> rank {ranks[idx]:.4f}")


if __name__ == "__main__":
    main()
