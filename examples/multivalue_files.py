#!/usr/bin/env python
"""Multiple attribute values per node: a file-size census (paper §IV).

Each node stores a set of files; the system estimates the distribution of
*file sizes across all files at all nodes* (not per-node aggregates).
Per the paper, each node feeds two quantities into the averaging
protocol: its count of files at or below each threshold, and its total
file count; the CDF value is the ratio of the two averages.  This runs on
the object-per-node engine, whose ``InstanceState`` implements the
multi-value scheme natively.
"""

import numpy as np

from repro.core import Adam2Config, Adam2Protocol, EmpiricalCDF
from repro.metrics import cdf_errors
from repro.rngs import make_rng, spawn
from repro.simulation import Engine
from repro.overlay import FullMeshOverlay


N_NODES = 250


def main() -> None:
    rng = make_rng(13)
    config = Adam2Config(points=30, rounds_per_instance=30, selection="lcut")
    protocol = Adam2Protocol(config, scheduler="manual")
    overlay = FullMeshOverlay([])
    engine = Engine(overlay=overlay, protocols=[protocol], rng=spawn(rng))

    # Give every node a random set of 1..20 log-normally sized files (kB).
    for _ in range(N_NODES):
        n_files = int(rng.integers(1, 21))
        sizes = np.rint(rng.lognormal(mean=np.log(150.0), sigma=1.2, size=n_files))
        engine.add_node(np.maximum(sizes, 1.0))

    protocol.trigger_instance(engine)
    engine.run(config.rounds_per_instance + 1)

    all_files = engine.attribute_values()
    truth = EmpiricalCDF(all_files)
    node = next(iter(engine.nodes.values()))
    estimate = node.state[protocol.name].current_estimate
    errors = cdf_errors(truth, estimate)

    print(f"File-size census: {N_NODES} nodes, {all_files.size} files total")
    print(f"  Err_m = {errors.maximum:.4f}, Err_a = {errors.average:.6f}")
    print()
    print("  fraction of files with size <= x:")
    for x in (50, 150, 500, 2000):
        true = truth.evaluate(np.asarray([float(x)]))[0]
        est = estimate.evaluate(np.asarray([float(x)]))[0]
        print(f"    x = {x:>5} kB: estimated {est:.3f}  (true {true:.3f})")


if __name__ == "__main__":
    main()
