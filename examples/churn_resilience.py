#!/usr/bin/env python
"""Estimation quality under membership churn (paper §VII-G).

Runs Adam2 campaigns at increasing replacement-churn rates — from the
paper's reference rate (0.1 %/round ≈ 15-minute sessions at a 1 s gossip
period) up to 10 %/round — and shows that the estimate survives churn
rates an order of magnitude beyond what deployed P2P systems exhibit.
"""

from repro import Adam2Config, Adam2Simulation, boinc_ram_mb


def main() -> None:
    print("Adam2 under churn — RAM distribution, 1,000 nodes, 5 instances")
    print(f"{'churn/round':>12}  {'Err_m':>9}  {'Err_a':>10}  note")
    for rate in (0.0, 0.001, 0.01, 0.1):
        sim = Adam2Simulation(
            workload=boinc_ram_mb(),
            n_nodes=1_000,
            config=Adam2Config(points=50, rounds_per_instance=30, selection="minmax"),
            seed=11,
            churn_rate=rate,
        )
        sim.run_instances(5)
        errors = sim.system_errors()
        if rate == 0.001:
            note = "paper's reference churn (15-min sessions)"
        elif rate == 0.01:
            note = "10x reference — where degradation starts"
        elif rate == 0.1:
            note = "100x reference"
        else:
            note = "no churn"
        print(f"{rate:>12.3f}  {errors.maximum:>9.4f}  {errors.average:>10.6f}  {note}")


if __name__ == "__main__":
    main()
