#!/usr/bin/env python
"""Quickstart: estimate an attribute distribution in a 1,000-node system.

Runs three Adam2 aggregation instances over a synthetic BOINC-like RAM
distribution (a heavily stepped CDF), then queries the resulting estimate
exactly as a monitoring application would: CDF values at points of
interest, quantiles, and the system size — all computed without any
central coordinator, from ~120 kB of gossip traffic per node.
"""

import numpy as np

from repro import Adam2Config, Adam2Simulation, boinc_ram_mb


def main() -> None:
    config = Adam2Config(
        points=50,                # λ interpolation points
        rounds_per_instance=30,   # instance TTL in gossip rounds
        selection="minmax",       # refinement heuristic (best for steps)
        bootstrap="neighbour",    # first-instance threshold source
    )
    sim = Adam2Simulation(workload=boinc_ram_mb(), n_nodes=1_000, config=config, seed=42)

    result = sim.run_instances(3)
    estimate = result.estimate

    print("Adam2 quickstart — RAM (MB) distribution over 1,000 nodes")
    print(f"  instances run        : 3")
    print(f"  estimated system size: {estimate.system_size:.1f}")
    print(f"  max error (Err_m)    : {result.final_errors.maximum:.4f}")
    print(f"  avg error (Err_a)    : {result.final_errors.average:.6f}")
    print()
    print("  fraction of nodes with RAM <= x:")
    for x in (256, 512, 1024, 2048, 4096):
        true = sim.true_cdf().evaluate(np.asarray([float(x)]))[0]
        est = estimate.evaluate(np.asarray([float(x)]))[0]
        print(f"    x = {x:>5} MB: estimated {est:.3f}   (true {true:.3f})")
    print()
    print("  estimated quantiles:")
    for q in (0.25, 0.5, 0.9):
        print(f"    p{int(q * 100):<3}: {estimate.quantile(q)[0]:.0f} MB")


if __name__ == "__main__":
    main()
