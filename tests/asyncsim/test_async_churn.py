"""Asynchronous engine under membership change.

The round-based churn experiments (Figs. 12–13) have an async analogue:
nodes depart with in-flight messages addressed to them and joiners enter
mid-instance.  These tests exercise the engine's departed-receiver paths
and Adam2's tombstone handling under that regime.
"""

import numpy as np
import pytest

from repro.asyncsim import AsyncAdam2, AsyncEngine, LatencyModel
from repro.core import Adam2Config, EmpiricalCDF
from repro.overlay import FullMeshOverlay
from repro.rngs import make_rng
from repro.workloads import boinc_ram_mb
from repro.workloads.synthetic import uniform_workload


def build(n=200, seed=5, **engine_kwargs):
    rng = make_rng(seed)
    config = Adam2Config(points=15, rounds_per_instance=30)
    protocol = AsyncAdam2(config, scheduler="manual")
    defaults = dict(gossip_period=1.0, period_jitter=0.1, latency=LatencyModel(0.05, 0.3))
    defaults.update(engine_kwargs)
    engine = AsyncEngine(FullMeshOverlay([]), protocol, rng, **defaults)
    engine.populate(boinc_ram_mb().sample(n, make_rng(seed + 1)))
    return engine, protocol


class TestDepartures:
    def test_instance_survives_departures(self):
        engine, protocol = build()
        engine.run_for(2.0)
        protocol.trigger_instance(engine)
        engine.run_for(5.0)
        # 10 % of nodes leave mid-instance, with messages in flight.
        victims = list(engine.nodes)[:20]
        for victim in victims:
            engine.remove_node(victim)
        engine.run_for(40.0)
        estimates = protocol.estimates(engine)
        assert len(estimates) == 180
        truth = EmpiricalCDF(engine.attribute_values())
        worst = max(
            np.abs(truth.evaluate(e.thresholds) - e.fractions).max()
            for e in estimates[:40]
        )
        # Departed mass leaves a residue (paper Fig. 12) but stays far
        # below the interpolation error.
        assert worst < 0.1

    def test_initiator_departure_stalls_gracefully(self):
        engine, protocol = build(n=50)
        initiator = next(iter(engine.nodes.values()))
        protocol.trigger_instance(engine, node=initiator)
        engine.remove_node(initiator.node_id)
        engine.run_for(40.0)  # nobody ever learns of the instance
        assert protocol.estimates(engine) == []


class TestJoins:
    def test_midflight_joiner_participates_in_next_instance(self):
        engine, protocol = build(n=100)
        engine.run_for(2.0)
        protocol.trigger_instance(engine)
        engine.run_for(10.0)
        joiner = engine.add_node(512.0)
        engine.run_for(30.0)
        # First instance may or may not have reached the joiner before its
        # TTL; a second instance definitely includes it.
        protocol.trigger_instance(engine)
        engine.run_for(40.0)
        adam2 = joiner.state[protocol.name]
        assert adam2.current_estimate is not None

    def test_population_grows_and_size_tracks(self):
        engine, protocol = build(n=100)
        engine.run_for(2.0)
        for value in uniform_workload(0, 1000).sample(50, make_rng(9)):
            engine.add_node(float(value))
        protocol.trigger_instance(engine)
        engine.run_for(40.0)
        sizes = [a.size_estimate for a in protocol.adam2_nodes(engine) if a.current_estimate]
        assert np.median(sizes) == pytest.approx(150.0, rel=0.1)
