"""Tests for the asynchronous event-driven simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.rngs import make_rng
from repro.asyncsim.adam2 import AsyncAdam2
from repro.asyncsim.engine import AsyncEngine, AsyncProtocol, LatencyModel
from repro.asyncsim.events import EventQueue
from repro.core import Adam2Config, EmpiricalCDF
from repro.overlay.random_graph import FullMeshOverlay
from repro.workloads import boinc_ram_mb
from repro.workloads.synthetic import uniform_workload


class TestEventQueue:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(2.0, lambda: log.append("b"))
        queue.schedule(1.0, lambda: log.append("a"))
        queue.schedule(3.0, lambda: log.append("c"))
        queue.run_until(10.0)
        assert log == ["a", "b", "c"]
        assert queue.now == 10.0

    def test_ties_fire_in_insertion_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(1.0, lambda: log.append(2))
        queue.run_until(1.0)
        assert log == [1, 2]

    def test_deadline_respected(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(5.0, lambda: log.append(5))
        fired = queue.run_until(2.0)
        assert fired == 1
        assert log == [1]
        assert len(queue) == 1

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run_until(2.0)
        with pytest.raises(SimulationError):
            queue.schedule(1.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1.0, lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_event_budget(self):
        queue = EventQueue()

        def rearm():
            queue.schedule_in(0.1, rearm)

        rearm()
        with pytest.raises(SimulationError):
            queue.run_until(1e9, max_events=100)


class TestLatencyModel:
    def test_samples_in_range(self):
        model = LatencyModel(0.01, 0.05)
        rng = make_rng(1)
        for _ in range(100):
            assert 0.01 <= model.sample(rng) <= 0.05

    def test_degenerate(self):
        assert LatencyModel(0.1, 0.1).sample(make_rng(0)) == 0.1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(0.5, 0.1)


class _EchoProtocol(AsyncProtocol):
    """Counts timer fires and deliveries."""

    name = "echo"

    def __init__(self):
        self.timers = 0
        self.requests = 0
        self.responses = 0

    def on_node_added(self, node, engine):
        node.state[self.name] = True

    def on_timer(self, node, engine):
        self.timers += 1
        return {"from": node.node_id}

    def on_request(self, node, payload, engine):
        self.requests += 1
        return {"ack": node.node_id}

    def on_response(self, node, payload, engine):
        self.responses += 1


class TestAsyncEngine:
    def _engine(self, n=10, **kwargs):
        rng = make_rng(3)
        protocol = _EchoProtocol()
        engine = AsyncEngine(FullMeshOverlay([]), protocol, rng, **kwargs)
        engine.populate(uniform_workload(0, 100).sample(n, make_rng(4)))
        return engine, protocol

    def test_timers_fire_per_period(self):
        engine, protocol = self._engine(10, gossip_period=1.0, period_jitter=0.0)
        engine.run_for(5.4)
        # Each node fires once per second after a random initial phase.
        assert 40 <= protocol.timers <= 60

    def test_request_response_roundtrip(self):
        engine, protocol = self._engine(10)
        engine.run_for(5.0)
        assert protocol.requests > 0
        # No loss configured: every request gets a response, modulo the
        # handful still in flight at the cutoff.
        assert protocol.requests - protocol.responses <= 3

    def test_message_loss(self):
        engine, protocol = self._engine(20, loss_rate=0.5)
        engine.run_for(10.0)
        assert engine.messages_lost > 0
        assert protocol.responses < protocol.requests + protocol.timers

    def test_remove_node_kills_timer(self):
        engine, protocol = self._engine(5)
        victim = next(iter(engine.nodes))
        engine.remove_node(victim)
        engine.run_for(3.0)
        assert victim not in engine.nodes

    def test_remove_unknown_raises(self):
        engine, _ = self._engine(3)
        with pytest.raises(SimulationError):
            engine.remove_node(12345)

    def test_invalid_params(self):
        rng = make_rng(0)
        with pytest.raises(ConfigurationError):
            AsyncEngine(FullMeshOverlay([]), _EchoProtocol(), rng, gossip_period=0.0)
        with pytest.raises(ConfigurationError):
            AsyncEngine(FullMeshOverlay([]), _EchoProtocol(), rng, period_jitter=1.0)
        with pytest.raises(ConfigurationError):
            AsyncEngine(FullMeshOverlay([]), _EchoProtocol(), rng, loss_rate=1.0)

    def test_accounting(self):
        engine, _ = self._engine(10)
        engine.run_for(3.0)
        assert engine.messages_sent > 0
        assert engine.bytes_sent >= engine.messages_sent * 64


class TestAsyncAdam2:
    def _run(self, latency=LatencyModel(0.02, 0.2), loss_rate=0.0, n=200, duration=40.0):
        rng = make_rng(5)
        config = Adam2Config(points=15, rounds_per_instance=30)
        protocol = AsyncAdam2(config, scheduler="manual")
        engine = AsyncEngine(
            FullMeshOverlay([]), protocol, rng,
            gossip_period=1.0, period_jitter=0.1, latency=latency, loss_rate=loss_rate,
        )
        engine.populate(boinc_ram_mb().sample(n, make_rng(6)))
        engine.run_for(2.0)
        protocol.trigger_instance(engine)
        engine.run_for(duration)
        return engine, protocol

    def test_all_nodes_estimate(self):
        engine, protocol = self._run()
        assert len(protocol.estimates(engine)) == 200

    def test_accuracy_at_points(self):
        engine, protocol = self._run()
        truth = EmpiricalCDF(engine.attribute_values())
        worst = max(
            np.abs(truth.evaluate(e.thresholds) - e.fractions).max()
            for e in protocol.estimates(engine)[:40]
        )
        assert worst < 0.01  # far below the interpolation error

    def test_size_estimation(self):
        engine, protocol = self._run()
        sizes = [a.size_estimate for a in protocol.adam2_nodes(engine) if a.current_estimate]
        assert np.median(sizes) == pytest.approx(200.0, rel=0.1)

    def test_survives_message_loss(self):
        engine, protocol = self._run(loss_rate=0.2, duration=50.0)
        truth = EmpiricalCDF(engine.attribute_values())
        estimates = protocol.estimates(engine)
        assert len(estimates) >= 195
        worst = max(
            np.abs(truth.evaluate(e.thresholds) - e.fractions).max() for e in estimates[:30]
        )
        assert worst < 0.05

    def test_no_rejoin_after_termination(self):
        engine, protocol = self._run(duration=60.0)
        for adam2 in protocol.adam2_nodes(engine):
            assert not adam2.instances  # everything cleanly terminated
            assert len(adam2.completed) == 1

    def test_probabilistic_scheduler(self):
        rng = make_rng(7)
        config = Adam2Config(
            points=8, rounds_per_instance=15, instance_frequency=2, initial_size_estimate=20.0
        )
        protocol = AsyncAdam2(config, scheduler="probabilistic")
        engine = AsyncEngine(FullMeshOverlay([]), protocol, rng, gossip_period=1.0)
        engine.populate(uniform_workload(0, 100).sample(60, make_rng(8)))
        engine.run_for(60.0)
        assert len(protocol.estimates(engine)) == 60
