"""Tests for the figure-data CSV exporter."""

import pytest

from repro.errors import ConfigurationError
from repro.analysis.export import read_csv
from repro.experiments.figdata import export_figures, main


class TestExportFigures:
    def test_writes_csv_per_experiment(self, tmp_path):
        written = export_figures(
            tmp_path, ["fig04", "fig09"], n_samples=1_000, population=1_000,
            sample_counts=(10, 100), repeats=1,
        )
        assert [p.name for p in written] == ["fig04.csv", "fig09.csv"]
        loaded = read_csv(written[1])
        assert loaded.name == "fig09_sampling"
        assert len(loaded) == 4

    def test_unknown_params_filtered(self, tmp_path):
        # n_samples applies to fig04 only; fig09's runner must not choke.
        written = export_figures(tmp_path, ["fig04"], n_samples=500, bogus_free_param_not_used=1)
        assert written[0].exists()

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_figures(tmp_path, ["fig99"])

    def test_cli_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_cli_writes(self, tmp_path, capsys):
        assert main([str(tmp_path), "fig04"]) == 0
        assert (tmp_path / "fig04.csv").exists()
