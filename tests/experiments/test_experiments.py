"""Smoke tests for every registered experiment at tiny scale.

These verify the wiring (parameters, row schemas, determinism) — the
shape assertions that constitute the reproduction live in ``benchmarks/``.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import get_experiment, list_experiments, run_experiment
from repro.experiments import (
    ablations,
    cost,
    fig04_distributions,
    fig05_bootstrap,
    fig06_single_instance,
    fig07_multi_instance,
    fig09_sampling,
    fig11_scalability,
    fig12_churn_single,
    fig14_confidence,
)


class TestRegistry:
    def test_lists_all_figures(self):
        names = list_experiments()
        for fig in ["fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
                    "fig10", "fig11", "fig12", "fig13", "fig14", "cost"]:
            assert fig in names

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_run_by_name(self):
        result = run_experiment("fig04", n_samples=2_000)
        assert result.name == "fig04_distributions"


class TestSmokeRuns:
    def test_fig04(self):
        result = fig04_distributions.run(n_samples=2_000, attributes=("cpu", "ram"))
        assert len(result) == 2
        assert {"attribute", "min", "max", "p50"} <= set(result.columns())

    def test_fig05(self):
        result = fig05_bootstrap.run(n_nodes=80, points=8, instances=2, seed=1, attributes=("ram",))
        assert len(result) == 4  # 2 bootstraps x 2 instances
        assert all(0 <= r["err_max"] <= 1 for r in result.rows)

    def test_fig06(self):
        result = fig06_single_instance.run(n_nodes=80, points=8, rounds=15, track_every=5)
        assert set(result.column("system")) == {"adam2", "equidepth", "equidepth_rank"}

    def test_fig07(self):
        result = fig07_multi_instance.run(
            n_nodes=80, points=8, instances=2, attributes=("ram",), heuristics=("minmax",)
        )
        assert len(result) == 2

    def test_fig09(self):
        result = fig09_sampling.run(population=2_000, sample_counts=(10, 100), repeats=1)
        assert len(result) == 4

    def test_fig11(self):
        result = fig11_scalability.run(sizes=(50, 100), points=8, instances=1, attributes=("ram",))
        assert [r["nodes"] for r in result.rows] == [50, 100]

    def test_fig12(self):
        result = fig12_churn_single.run(n_nodes=80, points=8, rounds=12, churn_rate=0.01, track_every=4)
        assert len(result.filter(system="adam2").rows) == 3

    def test_fig14(self):
        result = fig14_confidence.run(
            n_nodes=80, points=8, instances=2, verification_counts=(5,), attributes=("ram",)
        )
        assert len(result) == 2  # both metrics
        assert all(r["estimation_error"] >= 0 for r in result.rows)

    def test_cost(self):
        result = cost.run(sizes=(60,), rounds=10, instances=2)
        systems = set(result.column("system"))
        assert {"adam2-model", "adam2-measured", "sampling"} <= systems

    def test_ablation_join(self):
        result = ablations.run_join_mode(n_nodes=60, points=6, rounds=20)
        modes = set(result.column("join_mode"))
        assert modes == {"symmetric", "literal"}

    def test_determinism(self):
        a = fig07_multi_instance.run(n_nodes=60, points=6, instances=2, attributes=("ram",), heuristics=("lcut",), seed=5)
        b = fig07_multi_instance.run(n_nodes=60, points=6, instances=2, attributes=("ram",), heuristics=("lcut",), seed=5)
        assert a.rows == b.rows


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out

    def test_run_one(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig04"]) == 0
        out = capsys.readouterr().out
        assert "fig04_distributions" in out

    def test_inapplicable_override_fails(self, capsys):
        # fig04 has no system-size knob: --nodes must error, not be
        # silently dropped (it used to be).
        from repro.experiments.cli import main

        assert main(["fig04", "--nodes", "500"]) == 2
        assert "--nodes does not apply" in capsys.readouterr().err
