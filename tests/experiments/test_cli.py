"""CLI override plumbing and observability flags."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import _override_params, main


class _Args:
    """Minimal stand-in for the parsed argparse namespace."""

    def __init__(self, nodes=None, points=None, seed=None):
        self.nodes = nodes
        self.points = points
        self.seed = seed


class TestOverrideParams:
    def test_nodes_maps_to_n_nodes(self):
        params = _override_params("fig07", _Args(nodes=300))
        assert params == {"n_nodes": 300}

    def test_nodes_maps_to_population(self):
        params = _override_params("fig04", _Args())
        assert params == {}
        # fig09 (baseline comparison) sizes via n_nodes as well; find one
        # that uses 'population' dynamically instead of hard-coding.
        from repro.experiments.registry import list_experiments, get_experiment
        import inspect

        for name in list_experiments():
            signature = inspect.signature(get_experiment(name))
            if "population" in signature.parameters:
                assert _override_params(name, _Args(nodes=123)) == {"population": 123}
                break

    def test_nodes_without_size_knob_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="--nodes does not apply"):
            _override_params("fig04", _Args(nodes=300))

    def test_all_overrides_forwarded(self):
        params = _override_params("fig07", _Args(nodes=300, points=9, seed=5))
        assert params == {"n_nodes": 300, "points": 9, "seed": 5}


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        assert "fig07" in capsys.readouterr().out

    def test_bad_override_exits_nonzero(self, capsys):
        assert main(["fig04", "--nodes", "300"]) == 2
        assert "--nodes does not apply" in capsys.readouterr().err

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["fig07", "--backend", "warp"])

    def test_bad_profile_sizes_exits_nonzero(self, capsys):
        assert main(["--profile", "--profile-sizes", "ten"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_profile_writes_benchmark(self, tmp_path, capsys):
        out = tmp_path / "BENCH_backends.json"
        code = main([
            "--profile", "--profile-sizes", "64",
            "--profile-net-sizes", "16", "--profile-out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["benchmark"] == "adam2-backends"
        assert document["sizes"] == [64]
        assert document["net_sizes"] == [16]
        assert len(document["config_fingerprint"]) == 16
        backends = {entry["backend"] for entry in document["entries"]}
        skipped = {skip["backend"] for skip in document["skipped"]}
        # The net backend binds real sockets; sandboxes that forbid that
        # land it in `skipped` instead of `entries`.
        assert backends | skipped >= {"fast", "round", "async", "net"}
        assert {"fast", "round", "async"} <= backends
        for entry in document["entries"]:
            assert entry["wall_time_s"] > 0.0
            assert entry["rounds_timed"] > 0

    def test_experiment_with_trace_and_metrics(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main([
            "fig07", "--nodes", "100", "--backend", "round",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ])
        assert code == 0
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(line["type"] == "round" for line in lines)
        assert lines[0]["backend"] == "round"
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["rounds_total"] > 0
        assert "run/instance/round" in snapshot["spans"]
