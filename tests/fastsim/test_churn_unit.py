"""Unit tests for the fastsim churn helper and EquiDepth sample modes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rngs import make_rng
from repro.fastsim.churn import FastChurn
from repro.fastsim.equidepth import EquiDepthSimulation
from repro.workloads.synthetic import uniform_workload


class TestFastChurn:
    def test_zero_rate_no_victims(self):
        churn = FastChurn(0.0, uniform_workload(0, 10), make_rng(0))
        assert churn.select_victims(100).size == 0

    def test_expected_victim_count(self):
        churn = FastChurn(0.1, uniform_workload(0, 10), make_rng(1))
        total = sum(churn.select_victims(1000).size for _ in range(50))
        assert 4000 < total < 6000  # ~100/round over 50 rounds
        assert churn.replaced_total == total

    def test_never_empties(self):
        churn = FastChurn(1.0, uniform_workload(0, 10), make_rng(2))
        assert churn.select_victims(10).size <= 8

    def test_victims_distinct(self):
        churn = FastChurn(0.5, uniform_workload(0, 10), make_rng(3))
        victims = churn.select_victims(100)
        assert np.unique(victims).size == victims.size

    def test_fresh_values_from_workload(self):
        churn = FastChurn(0.1, uniform_workload(100, 200), make_rng(4))
        values = churn.fresh_values(50)
        assert values.size == 50
        assert values.min() >= 99 and values.max() <= 201

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            FastChurn(-0.1, uniform_workload(0, 10), make_rng(0))


class TestEquiDepthSampleModes:
    """The non-default ablation modes must still produce sane estimates."""

    @pytest.mark.parametrize("mode", ["rank", "resample"])
    def test_mode_runs_and_is_bounded(self, mode):
        sim = EquiDepthSimulation(
            uniform_workload(0, 1000), 200, synopsis_size=25, seed=5, mode=mode
        )
        result = sim.run_phase(rounds=20)
        assert 0.0 <= result.errors_entire.average <= 0.2
        assert result.errors_entire.maximum <= 1.0

    @pytest.mark.parametrize("mode", ["rank", "resample"])
    def test_synopsis_bounded(self, mode):
        sim = EquiDepthSimulation(
            uniform_workload(0, 1000), 100, synopsis_size=10, seed=6, mode=mode
        )
        sim.run_phase(rounds=10)
        for node in range(100):
            assert sim._synopses[node].size <= 10

    def test_histogram_beats_rank_on_steps(self):
        """The mass-conserving merge handles atoms better than rank
        reduction with its epidemic sample duplication."""
        from repro.workloads.synthetic import step_workload

        workload = step_workload([100.0, 500.0, 900.0], weights=[0.5, 0.3, 0.2])
        errors = {}
        for mode in ("histogram", "rank"):
            sim = EquiDepthSimulation(workload, 300, synopsis_size=20, seed=7, mode=mode)
            errors[mode] = sim.run_phase(rounds=25).errors_entire.average
        assert errors["histogram"] <= errors["rank"] * 1.5
