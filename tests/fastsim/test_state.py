"""Tests for the InstanceArrays state container."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.rngs import make_rng
from repro.fastsim.exchange import sequential_round
from repro.fastsim.state import InstanceArrays


@pytest.fixture()
def arrays():
    values = np.asarray([10.0, 20.0, 30.0, 40.0, 50.0, 60.0])
    return InstanceArrays.create(values, thresholds=[25.0, 45.0], v_thresholds=[35.0], initiator=2)


class TestCreate:
    def test_shapes(self, arrays):
        assert arrays.averaged.shape == (6, 4)  # 2 thresholds + 1 verification + weight
        assert arrays.extremes.shape == (6, 2)
        assert arrays.n_nodes == 6
        assert arrays.k == 2

    def test_indicator_initialisation(self, arrays):
        # Node 0 (value 10) is below both thresholds and the v-threshold.
        assert np.array_equal(arrays.averaged[0, :3], [1.0, 1.0, 1.0])
        # Node 5 (value 60) is above everything.
        assert np.array_equal(arrays.averaged[5, :3], [0.0, 0.0, 0.0])

    def test_initiator_weight_and_join(self, arrays):
        assert arrays.weights.sum() == 1.0
        assert arrays.weights[2] == 1.0
        assert arrays.joined.sum() == 1
        assert arrays.joined[2]

    def test_thresholds_sorted(self):
        out = InstanceArrays.create(np.asarray([1.0, 2.0]), thresholds=[5.0, 1.0])
        assert np.array_equal(out.thresholds, [1.0, 5.0])

    def test_validation(self):
        with pytest.raises(ProtocolError):
            InstanceArrays.create(np.asarray([1.0]), thresholds=[1.0])
        with pytest.raises(ProtocolError):
            InstanceArrays.create(np.asarray([1.0, 2.0]), thresholds=[1.0], initiator=5)


class TestInvariants:
    def test_mass_conserved_over_rounds(self, arrays):
        rng = make_rng(0)
        before = arrays.conserved_mass()
        for _ in range(10):
            sequential_round(arrays.averaged, arrays.extremes, arrays.joined, rng)
        assert np.allclose(arrays.conserved_mass(), before)

    def test_converges_to_population_fractions(self, arrays):
        rng = make_rng(1)
        for _ in range(40):
            sequential_round(arrays.averaged, arrays.extremes, arrays.joined, rng)
        # F(25) = 2/6, F(45) = 4/6, F(35) = 3/6 over the population.
        assert np.allclose(arrays.fractions.mean(axis=0), [2 / 6, 4 / 6], atol=1e-9)
        assert np.allclose(arrays.v_fractions.mean(axis=0), [3 / 6], atol=1e-9)
        assert np.allclose(1.0 / arrays.weights, 6.0, rtol=1e-9)

    def test_reset_node(self, arrays):
        arrays.joined[:] = True
        arrays.reset_node(0, value=55.0)
        assert not arrays.joined[0]
        assert np.array_equal(arrays.averaged[0], [0.0, 0.0, 0.0, 0.0])
        assert tuple(arrays.extremes[0]) == (55.0, 55.0)
