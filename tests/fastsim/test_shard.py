"""Tests for the multiprocessing shard driver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.config import Adam2Config
from repro.fastsim.adam2 import Adam2Simulation
from repro.fastsim.shard import (
    DEFAULT_SHARD_MIX,
    ShardedAdam2,
    partition_population,
)
from repro.workloads.synthetic import uniform_workload


def make_sharded(n=2000, shards=4, seed=0, **kwargs):
    config = kwargs.pop(
        "config", Adam2Config(points=10, rounds_per_instance=30)
    )
    return ShardedAdam2(
        uniform_workload(0, 1000), n, config, seed=seed, shards=shards, **kwargs
    )


class TestPartition:
    def test_covers_population_without_overlap(self):
        bounds = partition_population(1003, 7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 1003
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_sizes_differ_by_at_most_one(self):
        sizes = {stop - start for start, stop in partition_population(1000, 7)}
        assert max(sizes) - min(sizes) <= 1

    def test_every_shard_holds_a_pair(self):
        assert all(stop - start >= 2 for start, stop in partition_population(8, 4))
        with pytest.raises(ConfigurationError):
            partition_population(7, 4)

    def test_at_least_one_shard(self):
        with pytest.raises(ConfigurationError):
            partition_population(100, 0)


class TestConstruction:
    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sharded(shard_mix=0.0)
        with pytest.raises(ConfigurationError):
            make_sharded(shard_mix=1.5)

    def test_too_many_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sharded(n=6, shards=4)

    def test_default_mix(self):
        with make_sharded() as sim:
            assert sim.shard_mix == DEFAULT_SHARD_MIX


class TestParity:
    """The sharded run must agree with the unsharded fast backend."""

    def test_final_error_matches_unsharded(self):
        config = Adam2Config(points=10, rounds_per_instance=30)
        with make_sharded(n=2000, shards=4, seed=11, config=config) as sim:
            sharded = sim.run_instances(3)
        reference = Adam2Simulation(
            uniform_workload(0, 1000), 2000, config, seed=11, exchange="matching"
        ).run_instances(3)
        # Same protocol, different gossip pairings: both must converge to
        # the truth, so the final errors agree within the protocol's own
        # accuracy scale (~1-2 % average error at this size).
        assert sharded.final.errors_entire.average == pytest.approx(
            reference.final.errors_entire.average, abs=0.02
        )
        assert sharded.final.errors_points.average < 0.02
        assert sharded.final.reached == 2000

    def test_system_size_exact(self):
        with make_sharded(n=2000, shards=4) as sim:
            result = sim.run_instance()
        # Weight mass is conserved across shards, so the size estimate
        # from the consensus weight is exact.
        assert result.estimate.system_size == pytest.approx(2000.0, rel=1e-9)

    def test_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            with make_sharded(n=1000, shards=4, seed=5) as sim:
                outcomes.append(sim.run_instance())
        a, b = outcomes
        assert np.array_equal(a.thresholds, b.thresholds)
        assert np.array_equal(a.estimate.fractions, b.estimate.fractions)
        assert a.errors_entire == b.errors_entire


class TestSanitized:
    def test_mass_conserved_under_sanitizer(self):
        # The sanitizer asserts global mass conservation at the
        # coordinator every round and local row invariants inside every
        # worker; a partitioning bug fails the run loudly.
        with make_sharded(n=1000, shards=4, sanitize=True) as sim:
            result = sim.run_instance()
        assert result.reached == 1000

    def test_float32_passes_scaled_tolerance(self):
        with make_sharded(n=1000, shards=4, sanitize=True, dtype="float32") as sim:
            result = sim.run_instance()
        assert result.errors_points.average < 0.05

    @pytest.mark.parametrize("n,shards", [(500, 2), (1000, 3), (2048, 8)])
    def test_partitioning_property(self, n, shards):
        # Property over shapes: any partitioning must conserve mass
        # (checked by the sanitizer per round) and reach every node.
        config = Adam2Config(points=6, rounds_per_instance=25)
        with make_sharded(n=n, shards=shards, config=config, sanitize=True) as sim:
            result = sim.run_instance()
        assert result.reached == n


class TestResultShape:
    def test_instance_result_fields(self):
        with make_sharded(n=1000, shards=4) as sim:
            result = sim.run_instance()
        assert result.n_nodes == 1000
        assert result.shards == 4
        assert result.cross_rows_total > 0
        assert result.messages_total > 0
        assert result.bytes_total == result.messages_total * sim.config.message_bytes()
        assert result.mean_estimate() is result.estimate

    def test_run_result_accessors(self):
        with make_sharded(n=1000, shards=4) as sim:
            run = sim.run_instances(2)
        assert len(run.instances) == 2
        assert run.final is run.instances[-1]
        assert run.final_errors == run.final.errors_entire
        maxs, avgs = run.errors_by_instance()
        assert len(maxs) == len(avgs) == 2

    def test_workers_reused_across_instances(self):
        with make_sharded(n=1000, shards=4) as sim:
            sim.run_instance()
            processes = list(sim._processes)
            sim.run_instance()
            assert sim._processes == processes
            assert all(p.is_alive() for p in processes)
        assert not any(p.is_alive() for p in processes)
