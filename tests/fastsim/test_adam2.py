"""Tests for the vectorised Adam2 simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.config import Adam2Config
from repro.fastsim.adam2 import Adam2Simulation
from repro.workloads.synthetic import step_workload, uniform_workload


def make_sim(n=200, seed=0, churn=0.0, **config_kwargs):
    defaults = dict(points=10, rounds_per_instance=30)
    defaults.update(config_kwargs)
    return Adam2Simulation(
        uniform_workload(0, 1000), n, Adam2Config(**defaults), seed=seed, churn_rate=churn
    )


class TestConstruction:
    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sim(n=1)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam2Simulation(uniform_workload(0, 10), 10, Adam2Config(), exchange="telepathy")

    def test_deterministic_given_seed(self):
        a = make_sim(seed=9).run_instance()
        b = make_sim(seed=9).run_instance()
        assert np.array_equal(a.fractions, b.fractions)
        assert a.errors_entire == b.errors_entire


class TestSingleInstance:
    def test_converges_at_points(self):
        result = make_sim().run_instance()
        assert result.errors_points.maximum < 1e-5
        assert result.joined.all()

    def test_fraction_rows_nearly_identical(self):
        result = make_sim().run_instance()
        spread = result.fractions.std(axis=0).max()
        assert spread < 1e-5  # paper: cross-node std below 1e-5

    def test_size_estimates(self):
        result = make_sim(n=150).run_instance()
        assert np.median(result.size_estimates()) == pytest.approx(150.0, rel=1e-6)

    def test_extremes_found(self):
        sim = make_sim()
        result = sim.run_instance()
        assert result.minimum.min() == sim.values.min()
        assert result.maximum.max() == sim.values.max()
        # Everyone agrees after the epidemic.
        assert (result.minimum == sim.values.min()).all()

    def test_trace_recorded(self):
        result = make_sim().run_instance(track=True, track_every=5)
        assert len(result.trace) == 6  # 30 rounds / every 5
        assert result.trace.max_points[-1] < result.trace.max_points[0]

    def test_mean_estimate_queryable(self):
        sim = make_sim()
        estimate = sim.run_instance().mean_estimate()
        mid = estimate.evaluate(np.asarray([500.0]))[0]
        assert 0.4 < mid < 0.6

    def test_cost_accounting(self):
        sim = make_sim(n=100)
        result = sim.run_instance()
        # Near-everyone exchanges every round once joined.
        assert result.messages_total > 100 * 20
        assert result.bytes_total == result.messages_total * sim.config.message_bytes()

    def test_invalid_rounds(self):
        with pytest.raises(ConfigurationError):
            make_sim().run_instance(rounds=0)


class TestMultiInstance:
    def test_refinement_improves_step_cdf(self):
        sim = Adam2Simulation(
            step_workload([100.0, 200.0, 400.0, 800.0], weights=[0.4, 0.3, 0.2, 0.1]),
            300,
            Adam2Config(points=12, rounds_per_instance=25, selection="minmax"),
            seed=3,
        )
        run = sim.run_instances(4)
        maxs, _ = run.errors_by_instance()
        assert maxs[-1] < 0.5 * maxs[0]

    def test_run_result_accessors(self):
        run = make_sim().run_instances(2)
        assert len(run.instances) == 2
        assert run.final is run.instances[-1]
        assert run.final_errors == run.final.errors_entire
        assert run.estimate is not None

    def test_zero_instances_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sim().run_instances(0)

    def test_selection_override(self):
        sim = make_sim()
        sim.run_instance()
        result = sim.run_instance(selection="hcut")
        assert result.instance_index == 1


class TestChurn:
    def test_population_values_change(self):
        sim = make_sim(n=300, churn=0.01)
        before = sim.values.copy()
        sim.run_instance()
        assert not np.array_equal(sim.values, before)

    def test_errors_still_small_at_reference_churn(self):
        sim = make_sim(n=300, churn=0.001)
        result = sim.run_instance(rounds=40)
        assert result.errors_points.maximum < 0.05

    def test_participants_excludes_joiners(self):
        sim = make_sim(n=300, churn=0.05)
        result = sim.run_instance()
        assert result.participants.sum() < 300
        # Excluded joiners never join the running instance.
        assert not result.joined[~result.participants].any()

    def test_system_errors_after_instances(self):
        sim = make_sim(n=300, churn=0.01)
        sim.run_instances(2)
        errors = sim.system_errors()
        assert 0.0 <= errors.average <= 1.0
        assert errors.maximum >= errors.average

    def test_system_errors_before_any_instance_raises(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            make_sim().system_errors()


class TestConfidence:
    def test_confidence_sample_populated(self):
        sim = make_sim(verification_points=8)
        result = sim.run_instance(confidence_sample=20)
        assert result.est_errm.shape == result.est_erra.shape
        assert result.true_errm.shape[0] <= 20
        assert (result.est_errm >= result.est_erra - 1e-12).all()

    def test_no_confidence_without_verification(self):
        result = make_sim().run_instance(confidence_sample=20)
        assert result.est_errm is None


class TestMatchingKernel:
    def test_matching_converges(self):
        sim = Adam2Simulation(
            uniform_workload(0, 1000), 500, Adam2Config(points=8, rounds_per_instance=40),
            seed=4, exchange="matching",
        )
        result = sim.run_instance()
        assert result.errors_points.maximum < 1e-4


class TestBatchedState:
    def test_batch_and_buffers_reused_across_instances(self):
        sim = make_sim()
        sim.run_instance()
        batch, buffers = sim._batch, sim._buffers
        sim.run_instance()
        assert sim._batch is batch
        assert sim._buffers is buffers

    def test_results_detached_from_reused_batch(self):
        sim = make_sim()
        first = sim.run_instance()
        snapshot = (first.fractions.copy(), first.weights.copy())
        sim.run_instance()
        # The second instance refills the shared batch in place; the
        # first result must hold copies, not views into it.
        assert np.array_equal(first.fractions, snapshot[0])
        assert np.array_equal(first.weights, snapshot[1])

    def test_float32_mode_converges(self):
        config = Adam2Config(points=10, rounds_per_instance=30)
        f64 = Adam2Simulation(
            uniform_workload(0, 1000), 400, config, seed=2, dtype="float64"
        ).run_instance()
        f32 = Adam2Simulation(
            uniform_workload(0, 1000), 400, config, seed=2, dtype="float32"
        ).run_instance()
        assert f32.errors_points.maximum < 1e-3
        assert f32.errors_entire.average == pytest.approx(
            f64.errors_entire.average, abs=1e-3
        )

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam2Simulation(
                uniform_workload(0, 10), 10, Adam2Config(), dtype="float16"
            )
