"""Tests for the vectorised EquiDepth baseline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fastsim.equidepth import EquiDepthSimulation, merge_histograms
from repro.workloads.synthetic import step_workload, uniform_workload


class TestMergeHistograms:
    def test_mass_conserved(self):
        va, wa = np.asarray([1.0, 2.0]), np.asarray([0.5, 0.5])
        vb, wb = np.asarray([3.0, 4.0, 5.0]), np.asarray([0.4, 0.3, 0.3])
        values, weights = merge_histograms(va, wa, vb, wb, bound=3)
        assert values.size == 3
        assert weights.sum() == pytest.approx(1.0)

    def test_sorted_output(self):
        va, wa = np.asarray([5.0, 1.0]), np.asarray([0.5, 0.5])
        vb, wb = np.asarray([3.0]), np.asarray([1.0])
        values, _ = merge_histograms(va, wa, vb, wb, bound=10)
        assert np.all(np.diff(values) >= 0)

    def test_duplicates_collapsed(self):
        va, wa = np.asarray([2.0, 2.0]), np.asarray([0.5, 0.5])
        vb, wb = np.asarray([2.0]), np.asarray([1.0])
        values, weights = merge_histograms(va, wa, vb, wb, bound=10)
        assert values.size == 1
        assert weights[0] == pytest.approx(1.0)

    def test_heavy_atoms_survive_reduction(self):
        rng = np.random.default_rng(0)
        va = np.concatenate(([100.0], rng.uniform(0, 50, 60)))
        wa = np.concatenate(([0.5], np.full(60, 0.5 / 60)))
        values, weights = merge_histograms(va, wa, va.copy(), wa.copy(), bound=10)
        idx = np.flatnonzero(values == 100.0)
        assert idx.size == 1
        assert weights[idx[0]] >= 0.5  # the atom's mass is intact


class TestEquiDepthSimulation:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EquiDepthSimulation(uniform_workload(0, 10), 1)
        with pytest.raises(ConfigurationError):
            EquiDepthSimulation(uniform_workload(0, 10), 10, synopsis_size=1)
        with pytest.raises(ConfigurationError):
            EquiDepthSimulation(uniform_workload(0, 10), 10, mode="wavelet")

    def test_phase_produces_reasonable_estimate(self):
        sim = EquiDepthSimulation(uniform_workload(0, 1000), 300, synopsis_size=30, seed=2)
        result = sim.run_phase(rounds=25)
        assert result.errors_entire.maximum < 0.25
        assert result.errors_entire.average < 0.05

    def test_error_plateaus_across_phases(self):
        sim = EquiDepthSimulation(uniform_workload(0, 1000), 200, synopsis_size=20, seed=3)
        results = sim.run_phases(3, rounds=20)
        errs = [r.errors_entire.average for r in results]
        assert max(errs) < 3 * min(errs)

    def test_node_estimate_monotone(self):
        sim = EquiDepthSimulation(uniform_workload(0, 1000), 100, synopsis_size=20, seed=4)
        sim.run_phase(rounds=15)
        estimate = sim.node_estimate(0)
        grid = np.linspace(0, 1000, 200)
        assert np.all(np.diff(estimate.evaluate(grid)) >= -1e-12)

    def test_step_cdf_atoms_captured(self):
        sim = EquiDepthSimulation(
            step_workload([100.0, 500.0], weights=[0.5, 0.5]), 200, synopsis_size=20, seed=5
        )
        result = sim.run_phase(rounds=20)
        estimate = sim.node_estimate(3)
        # The two atoms dominate the synopsis.
        assert np.abs(estimate.evaluate(np.asarray([100.0]))[0] - 0.5) < 0.15

    def test_trace_tracking(self):
        sim = EquiDepthSimulation(uniform_workload(0, 100), 100, synopsis_size=10, seed=6)
        result = sim.run_phase(rounds=10, track=True, track_every=2)
        assert len(result.trace) == 5

    def test_churn_keeps_running(self):
        sim = EquiDepthSimulation(
            uniform_workload(0, 100), 150, synopsis_size=10, seed=7, churn_rate=0.02
        )
        result = sim.run_phase(rounds=15)
        assert result.errors_entire.maximum <= 1.0

    def test_invalid_rounds(self):
        sim = EquiDepthSimulation(uniform_workload(0, 100), 50, synopsis_size=10)
        with pytest.raises(ConfigurationError):
            sim.run_phase(rounds=0)

    def test_cost_accounting(self):
        sim = EquiDepthSimulation(uniform_workload(0, 100), 100, synopsis_size=10, seed=8)
        result = sim.run_phase(rounds=5)
        assert result.messages_total == 2 * 100 * 5
        assert result.bytes_total > 0
