"""Tests for the vectorised gossip exchange kernels."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.rngs import make_rng
from repro.fastsim.exchange import matching_round, random_partners, sequential_round


def make_state(n, k=3, seed=0):
    rng = make_rng(seed)
    averaged = rng.random((n, k))
    values = rng.uniform(0, 100, n)
    extremes = np.stack((values, values), axis=1)
    joined = np.zeros(n, dtype=bool)
    joined[0] = True
    return averaged, extremes, joined


class TestRandomPartners:
    def test_partner_never_self(self):
        rng = make_rng(1)
        for _ in range(20):
            order, partners = random_partners(50, rng)
            assert (order != partners).all()

    def test_order_is_permutation(self):
        order, _ = random_partners(10, make_rng(2))
        assert sorted(order) == list(range(10))

    def test_too_small(self):
        with pytest.raises(SimulationError):
            random_partners(1, make_rng(0))


@pytest.mark.parametrize("kernel", [sequential_round, matching_round])
class TestKernels:
    def test_mass_conserved_when_all_joined(self, kernel):
        averaged, extremes, joined = make_state(40)
        joined[:] = True
        before = averaged.sum(axis=0)
        kernel(averaged, extremes, joined, make_rng(3))
        assert np.allclose(averaged.sum(axis=0), before)

    def test_join_spreads_epidemically(self, kernel):
        averaged, extremes, joined = make_state(128)
        rng = make_rng(4)
        for _ in range(12):
            kernel(averaged, extremes, joined, rng)
        assert joined.all()

    def test_extremes_converge(self, kernel):
        averaged, extremes, joined = make_state(64)
        lo, hi = extremes[:, 0].min(), extremes[:, 1].max()
        joined[:] = True
        rng = make_rng(5)
        for _ in range(15):
            kernel(averaged, extremes, joined, rng)
        assert (extremes[:, 0] == lo).all()
        assert (extremes[:, 1] == hi).all()

    def test_excluded_nodes_untouched(self, kernel):
        averaged, extremes, joined = make_state(32)
        joined[:] = True
        excluded = np.zeros(32, dtype=bool)
        excluded[5] = True
        joined[5] = False
        before = averaged[5].copy()
        rng = make_rng(6)
        for _ in range(5):
            kernel(averaged, extremes, joined, rng, excluded=excluded)
        assert np.array_equal(averaged[5], before)
        assert not joined[5]

    def test_variance_contracts(self, kernel):
        averaged, extremes, joined = make_state(128)
        joined[:] = True
        rng = make_rng(7)
        start = averaged.std(axis=0).max()
        for _ in range(20):
            kernel(averaged, extremes, joined, rng)
        assert averaged.std(axis=0).max() < start * 1e-2


class TestLiteralJoin:
    def test_literal_breaks_mass_conservation(self):
        averaged, extremes, joined = make_state(2)
        expected = averaged.sum(axis=0).copy()
        sequential_round(averaged, extremes, joined, make_rng(8), join_mode="literal")
        assert joined.all()
        # The Fig. 1 join rule averages the joiner but leaves the informer
        # unchanged: the per-column totals shift (see DESIGN.md).
        assert not np.allclose(averaged.sum(axis=0), expected)

    def test_symmetric_preserves_mass(self):
        averaged, extremes, joined = make_state(2)
        expected = averaged.sum(axis=0).copy()
        sequential_round(averaged, extremes, joined, make_rng(8), join_mode="symmetric")
        assert np.allclose(averaged.sum(axis=0), expected)
