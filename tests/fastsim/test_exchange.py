"""Tests for the vectorised gossip exchange kernels."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.rngs import make_rng
from repro.fastsim.exchange import (
    ExchangeBuffers,
    matching_round,
    random_partners,
    sequential_round,
)


def make_state(n, k=3, seed=0):
    rng = make_rng(seed)
    averaged = rng.random((n, k))
    values = rng.uniform(0, 100, n)
    extremes = np.stack((values, values), axis=1)
    joined = np.zeros(n, dtype=bool)
    joined[0] = True
    return averaged, extremes, joined


class TestRandomPartners:
    def test_partner_never_self(self):
        rng = make_rng(1)
        for _ in range(20):
            order, partners = random_partners(50, rng)
            assert (order != partners).all()

    def test_order_is_permutation(self):
        order, _ = random_partners(10, make_rng(2))
        assert sorted(order) == list(range(10))

    def test_too_small(self):
        with pytest.raises(SimulationError):
            random_partners(1, make_rng(0))


@pytest.mark.parametrize("kernel", [sequential_round, matching_round])
class TestKernels:
    def test_mass_conserved_when_all_joined(self, kernel):
        averaged, extremes, joined = make_state(40)
        joined[:] = True
        before = averaged.sum(axis=0)
        kernel(averaged, extremes, joined, make_rng(3))
        assert np.allclose(averaged.sum(axis=0), before)

    def test_join_spreads_epidemically(self, kernel):
        averaged, extremes, joined = make_state(128)
        rng = make_rng(4)
        for _ in range(12):
            kernel(averaged, extremes, joined, rng)
        assert joined.all()

    def test_extremes_converge(self, kernel):
        averaged, extremes, joined = make_state(64)
        lo, hi = extremes[:, 0].min(), extremes[:, 1].max()
        joined[:] = True
        rng = make_rng(5)
        for _ in range(15):
            kernel(averaged, extremes, joined, rng)
        assert (extremes[:, 0] == lo).all()
        assert (extremes[:, 1] == hi).all()

    def test_excluded_nodes_untouched(self, kernel):
        averaged, extremes, joined = make_state(32)
        joined[:] = True
        excluded = np.zeros(32, dtype=bool)
        excluded[5] = True
        joined[5] = False
        before = averaged[5].copy()
        rng = make_rng(6)
        for _ in range(5):
            kernel(averaged, extremes, joined, rng, excluded=excluded)
        assert np.array_equal(averaged[5], before)
        assert not joined[5]

    def test_variance_contracts(self, kernel):
        averaged, extremes, joined = make_state(128)
        joined[:] = True
        rng = make_rng(7)
        start = averaged.std(axis=0).max()
        for _ in range(20):
            kernel(averaged, extremes, joined, rng)
        assert averaged.std(axis=0).max() < start * 1e-2


@pytest.mark.parametrize("kernel", [sequential_round, matching_round])
class TestExchangeBuffers:
    def test_buffered_bit_identical_to_unbuffered(self, kernel):
        """Preallocated scratch must not change results or the RNG stream."""
        averaged_a, extremes_a, joined_a = make_state(64)
        averaged_b = averaged_a.copy()
        extremes_b = extremes_a.copy()
        joined_b = joined_a.copy()
        rng_a, rng_b = make_rng(12), make_rng(12)
        buffers = ExchangeBuffers(64, averaged_b.shape[1], averaged_b.dtype)
        for _ in range(10):
            kernel(averaged_a, extremes_a, joined_a, rng_a)
            kernel(averaged_b, extremes_b, joined_b, rng_b, buffers=buffers)
        assert np.array_equal(averaged_a, averaged_b)
        assert np.array_equal(extremes_a, extremes_b)
        assert np.array_equal(joined_a, joined_b)
        # Both generators consumed identically: the next draw agrees.
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)

    def test_buffered_with_exclusions(self, kernel):
        averaged_a, extremes_a, joined_a = make_state(48)
        joined_a[:] = True
        excluded = np.zeros(48, dtype=bool)
        excluded[[3, 17]] = True
        joined_a[[3, 17]] = False
        averaged_b, extremes_b, joined_b = (
            averaged_a.copy(), extremes_a.copy(), joined_a.copy()
        )
        buffers = ExchangeBuffers(48, averaged_b.shape[1], averaged_b.dtype)
        kernel(averaged_a, extremes_a, joined_a, make_rng(13), excluded=excluded)
        kernel(
            averaged_b, extremes_b, joined_b, make_rng(13),
            excluded=excluded, buffers=buffers,
        )
        assert np.array_equal(averaged_a, averaged_b)
        assert np.array_equal(extremes_a, extremes_b)

    def test_steady_state_round_allocates_nothing_new(self, kernel):
        averaged, extremes, joined = make_state(32)
        joined[:] = True
        buffers = ExchangeBuffers(32, averaged.shape[1], averaged.dtype)
        scratch_ids = {id(buffers.order), id(buffers.partners), id(buffers.rows_a)}
        kernel(averaged, extremes, joined, make_rng(14), buffers=buffers)
        # The buffers object keeps the same arrays: reuse, not realloc.
        assert {id(buffers.order), id(buffers.partners), id(buffers.rows_a)} == scratch_ids


class TestBufferedPartners:
    def test_partner_never_self_with_buffers(self):
        buffers = ExchangeBuffers(50, 3, np.float64)
        rng = make_rng(15)
        for _ in range(20):
            order, partners = random_partners(50, rng, buffers)
            assert (order != partners).all()
            assert (0 <= partners).all() and (partners < 50).all()

    def test_buffered_partners_match_unbuffered_stream(self):
        buffers = ExchangeBuffers(40, 3, np.float64)
        order_a, partners_a = random_partners(40, make_rng(16))
        order_b, partners_b = random_partners(40, make_rng(16), buffers)
        assert np.array_equal(order_a, order_b)
        assert np.array_equal(partners_a, partners_b)


class TestLiteralJoin:
    def test_literal_breaks_mass_conservation(self):
        averaged, extremes, joined = make_state(2)
        expected = averaged.sum(axis=0).copy()
        sequential_round(averaged, extremes, joined, make_rng(8), join_mode="literal")
        assert joined.all()
        # The Fig. 1 join rule averages the joiner but leaves the informer
        # unchanged: the per-column totals shift (see DESIGN.md).
        assert not np.allclose(averaged.sum(axis=0), expected)

    def test_symmetric_preserves_mass(self):
        averaged, extremes, joined = make_state(2)
        expected = averaged.sum(axis=0).copy()
        sequential_round(averaged, extremes, joined, make_rng(8), join_mode="symmetric")
        assert np.allclose(averaged.sum(axis=0), expected)
