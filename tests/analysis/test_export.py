"""Tests for CSV export/import of experiment results."""

import pytest

from repro.errors import ReproError
from repro.analysis.export import read_csv, write_csv
from repro.analysis.results import ExperimentResult


@pytest.fixture()
def result():
    out = ExperimentResult("demo", description="d", params={"n": 10, "seed": 1})
    out.add_row(attribute="ram", instance=1, err_max=0.25, label="x")
    out.add_row(attribute="ram", instance=2, err_max=0.125)
    return out


class TestRoundtrip:
    def test_roundtrip(self, tmp_path, result):
        path = tmp_path / "demo.csv"
        write_csv(result, path)
        loaded = read_csv(path)
        assert loaded.name == "demo"
        assert loaded.params == {"n": 10, "seed": 1}
        assert loaded.rows[0]["err_max"] == 0.25
        assert loaded.rows[0]["instance"] == 1
        assert loaded.rows[0]["label"] == "x"

    def test_sparse_rows_preserved(self, tmp_path, result):
        path = tmp_path / "demo.csv"
        write_csv(result, path)
        loaded = read_csv(path)
        assert "label" not in loaded.rows[1]

    def test_types_restored(self, tmp_path, result):
        path = tmp_path / "demo.csv"
        write_csv(result, path)
        loaded = read_csv(path)
        assert isinstance(loaded.rows[0]["instance"], int)
        assert isinstance(loaded.rows[0]["err_max"], float)
        assert isinstance(loaded.rows[0]["attribute"], str)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            read_csv(tmp_path / "nope.csv")

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ReproError):
            read_csv(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# not-json\na\n1\n")
        with pytest.raises(ReproError):
            read_csv(path)
