"""Tests for result containers and reporting."""

import pytest

from repro.errors import ReproError
from repro.analysis.report import format_series, format_table, format_value
from repro.analysis.results import ExperimentResult
from repro.analysis.series import Series


class TestExperimentResult:
    def test_add_and_columns(self):
        result = ExperimentResult("x")
        result.add_row(a=1, b=2.0)
        result.add_row(a=3, c="z")
        assert result.columns() == ["a", "b", "c"]
        assert len(result) == 2

    def test_column_extraction(self):
        result = ExperimentResult("x")
        result.add_row(a=1)
        result.add_row(a=2)
        assert result.column("a") == [1, 2]

    def test_missing_column_raises(self):
        result = ExperimentResult("x")
        result.add_row(a=1)
        with pytest.raises(ReproError):
            result.column("zzz")

    def test_filter(self):
        result = ExperimentResult("x")
        result.add_row(kind="a", v=1)
        result.add_row(kind="b", v=2)
        result.add_row(kind="a", v=3)
        filtered = result.filter(kind="a")
        assert [r["v"] for r in filtered.rows] == [1, 3]


class TestSeries:
    def test_append_and_final(self):
        series = Series("s")
        series.append(1, 0.5)
        series.append(2, 0.25)
        assert series.final() == 0.25
        assert series.min_y() == 0.25
        assert len(series) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            Series("s", x=[1.0], y=[])

    def test_empty_final_raises(self):
        with pytest.raises(ReproError):
            Series("s").final()

    def test_as_arrays(self):
        series = Series("s", x=[1.0, 2.0], y=[3.0, 4.0])
        x, y = series.as_arrays()
        assert x.shape == (2,)


class TestFormatting:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(0.5) == "0.5"
        assert format_value(1e-5) == "1.000e-05"
        assert format_value(12345.0) == "12,345"
        assert format_value("abc") == "abc"
        assert format_value(0) == "0"
        assert format_value(True) == "True"

    def test_format_table_alignment(self):
        result = ExperimentResult("demo", description="desc", params={"n": 3})
        result.add_row(metric="errm", value=0.25)
        text = format_table(result)
        assert "== demo ==" in text
        assert "params: n=3" in text
        assert "errm" in text

    def test_format_empty_table(self):
        text = format_table(ExperimentResult("empty"))
        assert "(no rows)" in text

    def test_format_series(self):
        a = Series("adam2", x=[1, 2], y=[0.5, 0.25])
        b = Series("equidepth", x=[1, 2], y=[0.4, 0.4])
        text = format_series([a, b], x_label="round")
        assert "adam2" in text and "equidepth" in text
        assert "round" in text
