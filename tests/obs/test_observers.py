"""Observer lifecycle, sink behaviour, and trace determinism.

The lifecycle tests drive real backend runs through the facade so they
exercise the actual probe wiring, not synthetic events.
"""

from __future__ import annotations

import json

import pytest

from repro.api import run
from repro.core.config import Adam2Config
from repro.obs import (
    NULL_HUB,
    JsonlSink,
    MemorySink,
    ObserverHub,
    RoundSample,
    RunObserver,
    StdoutSummarySink,
)
from repro.workloads import lognormal_workload

WORKLOAD = lognormal_workload()
CONFIG = Adam2Config(points=5, rounds_per_instance=15)


def _run(observers, backend="fast", **kwargs):
    return run(
        CONFIG,
        WORKLOAD,
        backend=backend,
        n_nodes=kwargs.pop("n_nodes", 64),
        seed=kwargs.pop("seed", 7),
        observers=observers,
        **kwargs,
    )


class TestDisabledHub:
    def test_null_hub_is_fully_disabled(self):
        assert not NULL_HUB.enabled
        assert not NULL_HUB.probes_enabled
        assert not NULL_HUB.timing_enabled

    def test_disabled_span_records_nothing(self):
        hub = ObserverHub()
        with hub.span("run"):
            pass
        assert hub.spans.snapshot() == {}

    def test_run_without_observers_collects_no_metrics(self):
        result = _run(())
        assert result.metrics == {}


class TestLifecycle:
    def test_event_order_and_counts(self):
        sink = MemorySink()
        _run((sink,), instances=2)
        types = [type(event).__name__ for event in sink.events]
        assert types[0] == "RunStarted"
        assert types[-1] == "RunCompleted"
        assert types.count("InstanceStarted") == 2
        assert types.count("InstanceCompleted") == 2
        # Every instance's events are bracketed: start, rounds, end.
        first_start = types.index("InstanceStarted")
        first_end = types.index("InstanceCompleted")
        assert all(t == "RoundSample" for t in types[first_start + 1 : first_end])

    @pytest.mark.parametrize("backend", ["fast", "round", "async"])
    def test_round_probes_on_every_backend(self, backend):
        sink = MemorySink()
        _run((sink,), backend=backend)
        assert sink.rounds, f"no RoundSample events from {backend!r}"
        sample = sink.rounds[len(sink.rounds) // 2]
        assert isinstance(sample, RoundSample)
        # Weight conservation: the size column sums to one while the
        # instance is live.  The async backend samples between message
        # deliveries, so a little weight may sit in flight.
        tolerance = 0.1 if backend == "async" else 1e-6
        assert sample.weight_sum == pytest.approx(1.0, abs=tolerance)
        assert sample.mass_sum > 0.0
        assert 0 < sample.reached <= 64
        assert sample.messages >= 0 and sample.bytes >= 0
        # After the first sample the decay factor is defined.
        rates = [s.convergence_rate for s in sink.rounds[1:] if s.reached > 0]
        assert any(rate is not None for rate in rates)

    def test_metrics_registry_filled(self):
        sink = MemorySink()
        result = _run((sink,))
        counters = result.metrics["counters"]
        assert counters["runs_total"] == 1.0
        assert counters["instances_total"] == 1.0
        assert counters["rounds_total"] == len(sink.rounds)
        assert counters["messages_total"] > 0

    def test_instrumented_run_times_span_hierarchy(self):
        hub = ObserverHub(instrument=True)
        run(CONFIG, WORKLOAD, backend="fast", n_nodes=64, seed=7, hub=hub)
        spans = hub.spans
        assert spans.stats("run").count == 1
        assert spans.stats("run/instance").count == 1
        assert spans.stats("run/instance/round").count == CONFIG.rounds_per_instance

    def test_close_propagates_to_observers(self):
        class Closing(RunObserver):
            closed = False

            def close(self) -> None:
                self.closed = True

        observer = Closing()
        hub = ObserverHub((observer,))
        hub.close()
        assert observer.closed


class TestJsonlSink:
    def test_trace_is_valid_jsonl_with_probes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            _run((sink,))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "run_start"
        assert lines[-1]["type"] == "run_end"
        rounds = [line for line in lines if line["type"] == "round"]
        assert rounds
        for key in ("mass_sum", "weight_sum", "convergence_rate", "messages", "bytes"):
            assert key in rounds[0]

    @pytest.mark.parametrize("backend", ["fast", "round", "async"])
    def test_same_seed_trace_is_byte_identical(self, tmp_path, backend):
        """Golden determinism: events carry no wall-clock values."""
        contents = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            with JsonlSink(path) as sink:
                _run((sink,), backend=backend)
            contents.append(path.read_bytes())
        assert contents[0] == contents[1]

    def test_run_sequence_numbers_across_runs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            _run((sink,))
            _run((sink,), seed=8)
        runs = {json.loads(line)["run"] for line in path.read_text().splitlines()}
        assert runs == {0, 1}

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.on_round(
                RoundSample(
                    instance=0, round=1, mass_sum=1.0, weight_sum=1.0,
                    reached=1, spread=0.0, convergence_rate=None,
                    messages=0, bytes=0,
                )
            )


class TestStdoutSummarySink:
    def test_prints_run_summary(self, capsys):
        _run((StdoutSummarySink(),))
        out = capsys.readouterr().out
        assert "[obs] fast n=64 seed=7" in out
        assert "instance 0" in out


class TestRoundInstrumentCache:
    def _sample(self, round_index):
        return RoundSample(
            instance=0, round=round_index, mass_sum=2.5, weight_sum=1.0,
            reached=10, spread=0.1, convergence_rate=None,
            messages=20, bytes=800,
        )

    def test_instruments_resolved_once(self):
        hub = ObserverHub([RunObserver()])
        assert hub._round_instruments is None
        hub.round_sample(self._sample(1))
        cached = hub._round_instruments
        assert cached is not None
        hub.round_sample(self._sample(2))
        # The hot round loop must not re-resolve registry names.
        assert hub._round_instruments is cached

    def test_cached_instruments_still_aggregate(self):
        hub = ObserverHub([RunObserver()])
        for i in range(3):
            hub.round_sample(self._sample(i + 1))
        snapshot = hub.metrics.snapshot()
        assert snapshot["counters"]["rounds_total"] == 3
        assert snapshot["counters"]["messages_total"] == 60
        assert snapshot["counters"]["bytes_total"] == 2400
        assert snapshot["gauges"]["reached"] == 10
