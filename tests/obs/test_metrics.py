"""Unit tests for the metrics instruments and the span registry."""

from __future__ import annotations

import math
import time

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, SpanRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("messages")
        assert counter.snapshot() == 0.0
        counter.inc()
        counter.inc(41.0)
        assert counter.snapshot() == 42.0

    def test_rejects_decrease(self):
        counter = Counter("messages")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("weight_sum")
        gauge.set(1.0)
        gauge.set(0.25)
        assert gauge.snapshot() == 0.25


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("err")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == 2.0

    def test_log2_buckets(self):
        histogram = Histogram("err")
        histogram.observe(3.0)  # -> bucket 4.0
        histogram.observe(4.0)  # -> bucket 4.0 (exact power stays)
        histogram.observe(0.0)  # -> bucket 0.0
        assert histogram.buckets == {4.0: 2, 0.0: 1}

    def test_rejects_non_finite(self):
        histogram = Histogram("err")
        with pytest.raises(ValueError, match="non-finite"):
            histogram.observe(math.nan)

    def test_empty_snapshot_has_null_extremes(self):
        snapshot = Histogram("err").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None
        assert snapshot["max"] is None


class TestMetricsRegistry:
    def test_instruments_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("rounds").inc(3)
        registry.gauge("mass").set(20.0)
        registry.histogram("err").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"rounds": 3.0}
        assert snapshot["gauges"] == {"mass": 20.0}
        assert snapshot["histograms"]["err"]["count"] == 1


class TestSpanRegistry:
    def test_nested_paths_join_with_slash(self):
        registry = SpanRegistry()
        with registry.span("run"):
            for _ in range(2):
                with registry.span("instance"):
                    with registry.span("round"):
                        pass
        assert registry.stats("run").count == 1
        assert registry.stats("run/instance").count == 2
        assert registry.stats("run/instance/round").count == 2
        assert registry.stats("round") is None

    def test_durations_accumulate(self):
        registry = SpanRegistry()
        with registry.span("work"):
            time.sleep(0.01)
        stats = registry.stats("work")
        assert stats.total_seconds >= 0.01
        assert stats.min_seconds <= stats.mean_seconds <= stats.max_seconds

    def test_exception_still_records(self):
        registry = SpanRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("work"):
                raise RuntimeError("boom")
        assert registry.stats("work").count == 1

    def test_snapshot_round_trips(self):
        registry = SpanRegistry()
        with registry.span("run"):
            pass
        snapshot = registry.snapshot()
        assert set(snapshot) == {"run"}
        assert snapshot["run"]["count"] == 1
