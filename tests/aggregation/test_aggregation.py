"""Tests for the generic gossip aggregation substrate."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.rngs import make_rng
from repro.aggregation import AveragingProtocol, ExtremaProtocol, SizeEstimationProtocol
from repro.simulation.runner import build_engine
from repro.workloads.synthetic import uniform_workload


def make_engine(protocols, n=32, seed=0):
    return build_engine(uniform_workload(0, 100), n, protocols, make_rng(seed), overlay="mesh")


class TestAveraging:
    def test_mean_is_invariant(self):
        protocol = AveragingProtocol(lambda node: node.values[:1])
        engine = make_engine([protocol])
        before = protocol.states(engine).mean()
        engine.run(10)
        after = protocol.states(engine).mean()
        assert after == pytest.approx(before, rel=1e-12)

    def test_exponential_convergence(self):
        protocol = AveragingProtocol(lambda node: node.values[:1])
        engine = make_engine([protocol], n=64)
        spreads = [protocol.spread(engine)]
        for _ in range(25):
            engine.run_round()
            spreads.append(protocol.spread(engine))
        assert spreads[-1] < spreads[0] * 1e-5

    def test_vector_state(self):
        protocol = AveragingProtocol(lambda node: np.asarray([node.value, node.value * 2]))
        engine = make_engine([protocol], n=16)
        engine.run(20)
        states = protocol.states(engine)
        assert states.shape == (16, 2)
        assert np.allclose(states[:, 1], 2 * states[:, 0], rtol=1e-9)

    def test_empty_state_rejected(self):
        protocol = AveragingProtocol(lambda node: np.asarray([]))
        with pytest.raises(SimulationError):
            make_engine([protocol], n=4)

    def test_message_size_model(self):
        protocol = AveragingProtocol(lambda node: node.values[:1], value_bytes=8)
        engine = make_engine([protocol], n=8)
        engine.run(1)
        assert engine.network.summary(8).bytes_total == 8 * 2 * 8  # 8 exchanges x 2 msgs x 8 B


class TestExtrema:
    def test_converges_to_global_extremes(self):
        protocol = ExtremaProtocol()
        engine = make_engine([protocol], n=64)
        true_min = engine.attribute_values().min()
        true_max = engine.attribute_values().max()
        engine.run(12)
        assert protocol.converged(engine)
        assert protocol.extremes(engine) == (true_min, true_max)

    def test_logarithmic_speed(self):
        """Extrema spread epidemically: far faster than linear."""
        protocol = ExtremaProtocol()
        engine = make_engine([protocol], n=256)
        engine.run(12)  # ~log2(256) + slack
        assert protocol.converged(engine)


class TestSizeEstimation:
    def test_converges_to_inverse_weight(self):
        protocol = SizeEstimationProtocol()
        engine = make_engine([protocol], n=48)
        engine.run(30)
        estimates = protocol.estimates(engine)
        assert len(estimates) == 48
        assert np.allclose(estimates, 48.0, rtol=1e-6)

    def test_single_initiator(self):
        protocol = SizeEstimationProtocol()
        engine = make_engine([protocol], n=16)
        weights = [node.state["size"] for node in engine.nodes.values()]
        assert sum(w == 1.0 for w in weights) == 1
        assert sum(weights) == 1.0

    def test_weight_conservation_without_churn(self):
        protocol = SizeEstimationProtocol()
        engine = make_engine([protocol], n=16)
        engine.run(7)
        total = sum(node.state["size"] for node in engine.nodes.values())
        assert total == pytest.approx(1.0, rel=1e-12)

    def test_no_reach_raises(self):
        protocol = SizeEstimationProtocol()
        engine = make_engine([protocol], n=8)
        # Remove the initiator before any gossip: weight vanishes.
        initiator = next(
            node.node_id for node in engine.nodes.values() if node.state["size"] == 1.0
        )
        engine.remove_node(initiator)
        with pytest.raises(SimulationError):
            protocol.estimates(engine)
