"""Continuous scheduler: cycles, restart policy, drift tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cdf import EstimatedCDF
from repro.core.config import Adam2Config
from repro.errors import ConfigurationError
from repro.obs import MemorySink, ObserverHub
from repro.service.scheduler import (
    ContinuousScheduler,
    SchedulerPolicy,
    estimate_divergence,
)
from repro.service.store import EstimateStore
from repro.workloads.dynamic import DriftModel
from repro.workloads.synthetic import uniform_workload

CONFIG = Adam2Config(points=24, rounds_per_instance=25)


def make_scheduler(**overrides) -> ContinuousScheduler:
    kwargs = dict(
        backend="fast", n_nodes=600, seed=11,
        policy=SchedulerPolicy(chain_instances=2, steady_instances=1),
    )
    kwargs.update(overrides)
    store = kwargs.pop("store", EstimateStore())
    return ContinuousScheduler(
        CONFIG, uniform_workload(100, 1100), store, **kwargs
    )


class TestEstimateDivergence:
    def estimate(self, shift: float = 0.0) -> EstimatedCDF:
        thresholds = np.linspace(10.0, 90.0, 9) + shift
        return EstimatedCDF(
            thresholds=thresholds,
            fractions=np.linspace(0.1, 0.9, 9),
            minimum=0.0 + shift,
            maximum=100.0 + shift,
        )

    def test_identical_estimates_diverge_zero(self):
        a = self.estimate()
        assert estimate_divergence(a, a) == 0.0

    def test_shift_is_detected(self):
        assert estimate_divergence(self.estimate(), self.estimate(20.0)) > 0.1

    def test_symmetric(self):
        a, b = self.estimate(), self.estimate(7.0)
        assert estimate_divergence(a, b) == pytest.approx(
            estimate_divergence(b, a)
        )

    def test_grid_validated(self):
        a = self.estimate()
        with pytest.raises(ConfigurationError):
            estimate_divergence(a, a, grid_points=1)


class TestCycles:
    def test_first_cycle_is_a_restart_with_the_full_chain(self):
        scheduler = make_scheduler()
        snapshot = scheduler.run_cycle()
        assert snapshot.restarted
        assert snapshot.instances == 2
        assert snapshot.divergence is None
        assert snapshot.version == 1 and snapshot.published_tick == 1
        assert snapshot.staleness(1) == 0  # fresh at publish time

    def test_steady_cycles_run_single_instances(self):
        scheduler = make_scheduler()
        scheduler.run_cycle()
        second = scheduler.run_cycle()
        assert not second.restarted
        assert second.instances == 1
        assert second.divergence is not None and second.divergence < 0.05

    def test_cycles_publish_consecutive_versions(self):
        store = EstimateStore()
        scheduler = make_scheduler(store=store)
        snapshots = scheduler.run_cycles(3)
        assert [s.version for s in snapshots] == [1, 2, 3]
        assert scheduler.tick == 3
        assert store.latest().version == 3

    def test_deterministic_given_seed(self):
        first = make_scheduler(seed=42).run_cycles(2)[-1]
        second = make_scheduler(seed=42).run_cycles(2)[-1]
        xs1, ys1 = first.estimate.polyline()
        xs2, ys2 = second.estimate.polyline()
        np.testing.assert_array_equal(xs1, xs2)
        np.testing.assert_array_equal(ys1, ys2)
        assert first.divergence == second.divergence

    def test_counters_flow_through_hub(self):
        hub = ObserverHub([MemorySink()])
        scheduler = make_scheduler(hub=hub)
        scheduler.run_cycles(3)
        counters = hub.metrics.snapshot()["counters"]
        assert counters["service_cycles_total"] == 3
        assert counters["service_restarts_total"] == 1  # the bootstrap only
        # run/instance events of every cycle flow through the same hub
        assert counters["runs_total"] == 3
        sink = hub.observers[0]
        assert isinstance(sink, MemorySink)
        assert len(sink.runs) == 3
        assert len(sink.instances) == 2 + 1 + 1  # chain, steady, steady

    def test_size_estimate_is_published(self):
        snapshot = make_scheduler().run_cycle()
        assert snapshot.size_estimate == pytest.approx(600.0, rel=0.05)

    def test_confidence_published_with_verification_points(self):
        config = Adam2Config(
            points=20, rounds_per_instance=25, verification_points=4
        )
        store = EstimateStore()
        scheduler = ContinuousScheduler(
            config, uniform_workload(100, 1100), store,
            backend="fast", n_nodes=500, seed=3,
            options={"confidence_sample": 64},
        )
        snapshot = scheduler.run_cycle()
        assert snapshot.confidence is not None
        est_a, est_m = snapshot.confidence
        assert 0.0 <= est_a <= 1.0 and 0.0 <= est_m <= 1.0

    def test_population_is_stable_without_drift(self):
        scheduler = make_scheduler()
        before = scheduler.population()
        scheduler.run_cycles(2)
        np.testing.assert_array_equal(before, scheduler.population())


class TestRestartPolicy:
    def test_no_restart_on_static_population(self):
        scheduler = make_scheduler()
        snapshots = scheduler.run_cycles(4)
        assert [s.restarted for s in snapshots[1:]] == [False, False, False]

    def test_heavy_drift_triggers_restart(self):
        drift = DriftModel(shift_per_round=120.0)  # ~12 % of the range
        scheduler = make_scheduler(
            drift=drift,
            policy=SchedulerPolicy(
                chain_instances=2, steady_instances=1,
                restart_divergence=0.02,
            ),
        )
        snapshots = scheduler.run_cycles(4)
        assert any(s.restarted for s in snapshots[1:])
        assert any(
            s.divergence is not None and s.divergence > 0.02
            for s in snapshots[1:]
        )

    def test_extreme_move_triggers_restart_even_with_loose_divergence(self):
        drift = DriftModel(growth_per_round=0.5)
        scheduler = make_scheduler(
            drift=drift,
            policy=SchedulerPolicy(
                chain_instances=2, steady_instances=1,
                restart_divergence=1.1,  # divergence alone can never fire
                extreme_change=0.2,
            ),
        )
        snapshots = scheduler.run_cycles(3)
        assert any(s.restarted for s in snapshots[1:])


class TestDriftTracking:
    def test_served_estimate_tracks_drifting_population(self):
        """Acceptance: max CDF error < 0.05 over >= 5 consecutive cycles.

        The population shifts every cycle (repro.workloads.dynamic);
        each cycle's published snapshot is checked against the *exact*
        ground truth of the population it estimated.
        """
        drift = DriftModel(shift_per_round=40.0, growth_per_round=0.01)
        store = EstimateStore()
        scheduler = ContinuousScheduler(
            CONFIG, uniform_workload(100, 1100), store,
            backend="fast", n_nodes=800, seed=7,
            policy=SchedulerPolicy(chain_instances=2, steady_instances=1),
            drift=drift,
        )
        errors = []
        for _ in range(6):
            truth = scheduler.current_truth()  # the population this cycle sees
            snapshot = scheduler.run_cycle()
            grid = np.linspace(truth.minimum, truth.maximum, 257)
            errors.append(float(np.max(np.abs(
                snapshot.estimate.evaluate(grid) - truth.evaluate(grid)
            ))))
        assert len(errors) >= 5
        assert max(errors) < 0.05, f"per-cycle max errors: {errors}"
        # the population really moved while the service kept up
        assert scheduler.population().min() > 200.0


class TestValidation:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            SchedulerPolicy(chain_instances=0)
        with pytest.raises(ConfigurationError):
            SchedulerPolicy(restart_divergence=-0.1)
        with pytest.raises(ConfigurationError):
            SchedulerPolicy(divergence_grid=1)

    def test_negative_cycle_count_rejected(self):
        scheduler = make_scheduler()
        with pytest.raises(ConfigurationError):
            scheduler.run_cycles(-1)

    def test_tiny_population_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheduler(n_nodes=1)
