"""Versioned estimate store: versioning, bounded history, pinning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cdf import EstimatedCDF
from repro.errors import ServiceError
from repro.service.store import EstimateStore


def make_estimate(offset: float = 0.0) -> EstimatedCDF:
    thresholds = np.asarray([10.0, 20.0, 30.0]) + offset
    return EstimatedCDF(
        thresholds=thresholds,
        fractions=np.asarray([0.25, 0.5, 0.75]),
        minimum=0.0 + offset,
        maximum=40.0 + offset,
        system_size=100.0,
    )


def publish(store: EstimateStore, offset: float = 0.0, **overrides):
    kwargs = dict(
        backend="fast", n_nodes=100, instances=1, rounds=25,
        size_estimate=100.0,
    )
    kwargs.update(overrides)
    return store.publish(make_estimate(offset), **kwargs)


class TestVersioning:
    def test_versions_are_monotone_from_one(self):
        store = EstimateStore()
        assert [publish(store).version for _ in range(3)] == [1, 2, 3]
        assert store.latest().version == 3
        assert store.versions() == [1, 2, 3]

    def test_get_returns_requested_version(self):
        store = EstimateStore()
        publish(store, offset=0.0)
        publish(store, offset=5.0)
        assert store.get(1).estimate.minimum == 0.0
        assert store.get(2).estimate.minimum == 5.0

    def test_empty_store_is_unavailable(self):
        store = EstimateStore()
        with pytest.raises(ServiceError) as excinfo:
            store.latest()
        assert excinfo.value.code == "unavailable"

    def test_missing_version_error_names_live_range(self):
        store = EstimateStore()
        publish(store)
        with pytest.raises(ServiceError, match=r"\[1\]"):
            store.get(99)

    def test_snapshots_are_immutable(self):
        store = EstimateStore()
        snapshot = publish(store)
        with pytest.raises((AttributeError, TypeError)):
            snapshot.version = 7  # type: ignore[misc]


class TestBoundedHistory:
    def test_history_is_bounded(self):
        store = EstimateStore(max_history=3)
        for _ in range(6):
            publish(store)
        assert len(store) == 3
        assert store.versions() == [4, 5, 6]
        assert store.published_total == 6

    def test_latest_survives_eviction(self):
        store = EstimateStore(max_history=1)
        for _ in range(4):
            publish(store)
        assert store.versions() == [4]
        assert store.latest().version == 4

    def test_evicted_version_is_unavailable(self):
        store = EstimateStore(max_history=2)
        for _ in range(4):
            publish(store)
        with pytest.raises(ServiceError) as excinfo:
            store.get(1)
        assert excinfo.value.code == "unavailable"

    def test_max_history_validated(self):
        with pytest.raises(ServiceError):
            EstimateStore(max_history=0)


class TestPinning:
    def test_pinned_version_survives_eviction(self):
        store = EstimateStore(max_history=2)
        publish(store)
        store.pin(1)
        for _ in range(5):
            publish(store)
        assert 1 in store.versions()
        assert store.get(1).version == 1
        assert store.pinned() == [1]

    def test_pins_can_overflow_the_budget(self):
        store = EstimateStore(max_history=2)
        publish(store)
        publish(store)
        store.pin(1)
        store.pin(2)
        publish(store)  # nothing evictable: both older versions are pinned
        assert store.versions() == [1, 2, 3]

    def test_unpin_makes_version_evictable(self):
        store = EstimateStore(max_history=2)
        publish(store)
        publish(store)
        store.pin(1)
        store.pin(2)
        publish(store)
        store.unpin(1)  # the overflow drains immediately
        assert store.versions() == [2, 3]

    def test_pinning_unknown_version_fails(self):
        store = EstimateStore()
        with pytest.raises(ServiceError):
            store.pin(5)

    def test_unpin_is_idempotent(self):
        store = EstimateStore()
        publish(store)
        store.unpin(1)  # never pinned: a no-op
        assert store.versions() == [1]

    def test_pin_evict_unpin_lifecycle(self):
        # The full contract in one pass: a pin taken *before* the
        # version would age out keeps it queryable through arbitrarily
        # many publishes, and releasing the pin surrenders it to the
        # very next eviction sweep — not retroactively.
        store = EstimateStore(max_history=2)
        publish(store)
        store.pin(1)
        for _ in range(6):
            publish(store)
        assert store.get(1).version == 1
        assert store.versions()[0] == 1
        store.unpin(1)
        # no overflow at this point (exactly max_history retained), so
        # the unpinned version lives until the next publish overflows
        assert 1 in store.versions()
        publish(store)
        assert 1 not in store.versions()
        with pytest.raises(ServiceError):
            store.get(1)

    def test_history_reports_pin_state(self):
        store = EstimateStore(max_history=4)
        publish(store)
        publish(store)
        publish(store)
        store.pin(2)
        by_version = {entry["version"]: entry for entry in store.history()}
        assert by_version[2]["pinned"] is True
        assert by_version[1]["pinned"] is False
        assert by_version[3]["pinned"] is False
        store.unpin(2)
        by_version = {entry["version"]: entry for entry in store.history()}
        assert by_version[2]["pinned"] is False


class TestMetadata:
    def test_staleness_counts_ticks_since_publish(self):
        store = EstimateStore()
        snapshot = publish(store, published_tick=3)
        assert snapshot.staleness(3) == 0
        assert snapshot.staleness(7) == 4
        assert snapshot.staleness(1) == 0  # clamped, never negative

    def test_meta_is_json_serialisable(self):
        import json

        store = EstimateStore()
        snapshot = publish(
            store, confidence=(0.01, 0.04), restarted=True, divergence=0.002
        )
        meta = snapshot.meta()
        round_tripped = json.loads(json.dumps(meta))
        assert round_tripped["version"] == 1
        assert round_tripped["confidence"] == [0.01, 0.04]
        assert round_tripped["restarted"] is True
        assert round_tripped["points"] == 3
