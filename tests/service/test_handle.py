"""ServiceHandle / build_service: the in-process frontend."""

from __future__ import annotations

import pytest

from repro.core.config import Adam2Config
from repro.errors import ConfigurationError, ServiceError
from repro.obs import MemorySink, ObserverHub
from repro.service import build_service
from repro.workloads.synthetic import uniform_workload

CONFIG = Adam2Config(points=24, rounds_per_instance=25)


def make_handle(**overrides):
    kwargs = dict(backend="fast", n_nodes=500, seed=9)
    kwargs.update(overrides)
    return build_service(CONFIG, uniform_workload(0, 1000), **kwargs)


class TestBuildService:
    def test_warm_service_answers_immediately(self):
        handle = make_handle()
        assert 0.0 <= handle.cdf(500.0) <= 1.0
        assert 0.0 <= handle.quantile(0.5) <= 1000.0
        assert handle.network_size() == pytest.approx(500.0, rel=0.05)

    def test_cold_service_is_unavailable(self):
        handle = make_handle(warm_cycles=0)
        with pytest.raises(ServiceError) as excinfo:
            handle.cdf(500.0)
        assert excinfo.value.code == "unavailable"

    def test_unknown_backend_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="registered backends"):
            make_handle(backend="nope", warm_cycles=0)


class TestLifecycle:
    def test_refresh_publishes_new_versions(self):
        handle = make_handle()
        assert handle.store.latest().version == 1
        snapshot = handle.refresh(2)
        assert snapshot.version == 3
        assert handle.scheduler.tick == 3

    def test_pin_and_unpin_round_trip(self):
        handle = make_handle(max_history=2)
        handle.pin(1)
        handle.refresh(4)
        assert 1 in handle.store.versions()
        assert handle.cdf(500.0, version=1) == pytest.approx(
            handle.cdf(500.0, version=1)
        )
        handle.unpin(1)
        handle.refresh()
        assert 1 not in handle.store.versions()


class TestStatus:
    def test_status_shape(self):
        handle = make_handle()
        status = handle.status()
        assert status["backend"] == "fast"
        assert status["n_nodes"] == 500
        assert status["tick"] == 1
        assert status["staleness"] == 0
        assert status["versions"] == [1]
        latest = status["latest"]
        assert latest is not None and latest["version"] == 1
        assert status["cache"]["max_size"] == 1024

    def test_cold_status_has_no_latest(self):
        handle = make_handle(warm_cycles=0)
        status = handle.status()
        assert status["latest"] is None and status["staleness"] is None

    def test_history_matches_store(self):
        handle = make_handle()
        handle.refresh()
        history = handle.history()
        assert [entry["version"] for entry in history] == [1, 2]

    def test_metrics_include_queries_and_cycles(self):
        hub = ObserverHub([MemorySink()])
        handle = make_handle(hub=hub)
        handle.cdf(500.0)
        handle.cdf(500.0)
        snapshot = handle.metrics()
        counters = snapshot["counters"]
        assert counters["queries_total"] == 2
        assert counters["query_cache_hits_total"] == 1
        assert counters["service_cycles_total"] == 1
