"""The typed query protocol: registry, parsing, dispatch, wire parity."""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import Adam2Config
from repro.errors import ServiceError
from repro.obs import MemorySink, ObserverHub
from repro.service import build_service
from repro.service.protocol import (
    BATCH_OP,
    CONTROL_OPS,
    ENGINE_OPS,
    MAX_BATCH_OPS,
    OPS,
    BatchRequest,
    BatchResponse,
    InvalidOp,
    QueryDispatcher,
    QueryRequest,
    QueryResponse,
    canonical_op,
    parse_request,
)
from repro.workloads.synthetic import uniform_workload

CONFIG = Adam2Config(points=24, rounds_per_instance=25)


@pytest.fixture(scope="module")
def handle():
    return build_service(
        CONFIG, uniform_workload(0, 1000), backend="fast", n_nodes=400, seed=5
    )


class TestRegistry:
    def test_every_op_has_a_unique_wire_name_and_code(self):
        codes = [spec.code for spec in OPS.values()]
        assert len(set(codes)) == len(codes)
        assert ENGINE_OPS | CONTROL_OPS == set(OPS)
        assert ENGINE_OPS.isdisjoint(CONTROL_OPS)

    def test_engine_methods_exist_on_the_engine(self, handle):
        for spec in OPS.values():
            if spec.engine_method is not None:
                assert callable(getattr(handle.engine, spec.engine_method))

    def test_canonical_op_accepts_engine_method_aliases(self):
        assert canonical_op("fraction_between") == "fraction"
        assert canonical_op("network_size") == "size"
        assert canonical_op("cdf") == "cdf"
        assert canonical_op(BATCH_OP) == BATCH_OP

    def test_canonical_op_rejects_unknown_names(self):
        with pytest.raises(ServiceError) as err:
            canonical_op("nope")
        assert err.value.code == "bad_request"


class TestQueryRequest:
    def test_aliased_construction_is_canonicalised(self):
        request = QueryRequest("network_size")
        assert request.op == "size" and request.args == ()

    def test_arity_is_validated(self):
        with pytest.raises(ServiceError):
            QueryRequest("cdf", ())
        with pytest.raises(ServiceError):
            QueryRequest("fraction", (1.0,))

    def test_pin_requires_a_version(self):
        with pytest.raises(ServiceError):
            QueryRequest("pin")
        assert QueryRequest.pin(3).version == 3

    def test_to_wire_produces_the_legacy_shape(self):
        wire = QueryRequest.fraction_between(1.0, 2.0, request_id=9).to_wire()
        assert wire == {"op": "fraction", "a": 1.0, "b": 2.0, "id": 9}

    def test_batch_never_masquerades_as_a_query(self):
        with pytest.raises(ServiceError):
            QueryRequest(BATCH_OP)


class TestParseRequest:
    def test_single_round_trip(self):
        request = parse_request({"op": "cdf", "x": 1.5, "id": 7})
        assert isinstance(request, QueryRequest)
        assert request.args == (1.5,) and request.request_id == 7

    def test_booleans_are_not_numbers(self):
        # Regression: bool is an int subclass, so a naive isinstance
        # check admits {"op": "cdf", "x": true} and serves cdf(1.0).
        with pytest.raises(ServiceError) as err:
            parse_request({"op": "cdf", "x": True})
        assert err.value.code == "bad_request"
        with pytest.raises(ServiceError):
            parse_request({"op": "fraction", "a": 1.0, "b": False})

    def test_boolean_version_is_rejected(self):
        with pytest.raises(ServiceError):
            parse_request({"op": "cdf", "x": 1.0, "version": True})

    def test_batch_members_fail_positionally(self):
        request = parse_request({"op": BATCH_OP, "ops": [
            {"op": "cdf", "x": 1.0},
            {"op": "nope"},
            {"op": "size"},
            {"op": "cdf", "x": "wide"},
        ]})
        assert isinstance(request, BatchRequest)
        kinds = [type(item).__name__ for item in request.items]
        assert kinds == ["QueryRequest", "InvalidOp", "QueryRequest", "InvalidOp"]
        invalid = request.items[1]
        assert isinstance(invalid, InvalidOp) and invalid.op == "nope"

    def test_batches_do_not_nest(self):
        request = parse_request({"op": BATCH_OP, "ops": [
            {"op": BATCH_OP, "ops": [{"op": "size"}]},
        ]})
        assert isinstance(request, BatchRequest)
        assert isinstance(request.items[0], InvalidOp)

    def test_empty_and_oversized_batches_are_rejected(self):
        with pytest.raises(ServiceError):
            parse_request({"op": BATCH_OP, "ops": []})
        too_many = [{"op": "size"}] * (MAX_BATCH_OPS + 1)
        with pytest.raises(ServiceError):
            parse_request({"op": BATCH_OP, "ops": too_many})

    def test_non_object_payloads_are_rejected(self):
        for payload in ([1, 2], "cdf", {"x": 1.0}, {"op": 7}):
            with pytest.raises(ServiceError):
                parse_request(payload)  # type: ignore[arg-type]


class TestResponses:
    def test_success_wire_round_trip(self):
        response = QueryResponse.success(0.5, version=3, request_id=1)
        assert QueryResponse.from_wire(response.to_wire()) == response

    def test_failure_wire_round_trip(self):
        response = QueryResponse.failure("unavailable", "gone", request_id=2)
        again = QueryResponse.from_wire(response.to_wire())
        assert not again.ok and again.error == "unavailable"
        with pytest.raises(ServiceError) as err:
            again.result()
        assert err.value.code == "unavailable"

    def test_batch_wire_round_trip(self):
        batch = BatchResponse(
            (QueryResponse.success(1.0), QueryResponse.failure("bad_request", "no")),
            request_id=4,
        )
        again = BatchResponse.from_wire(batch.to_wire())
        assert [r.ok for r in again.results] == [True, False]
        assert again.request_id == 4


class TestDispatcher:
    def make(self, handle, sink=None):
        hub = ObserverHub([sink]) if sink is not None else None
        if hub is not None:
            return QueryDispatcher(handle.engine, handle, hub=hub)
        return QueryDispatcher(handle.engine, handle)

    def test_engine_op_executes(self, handle):
        response = self.make(handle).dispatch(QueryRequest.cdf(500.0))
        assert isinstance(response, QueryResponse)
        assert response.ok and response.value == pytest.approx(handle.cdf(500.0))

    def test_control_ops_answer_from_the_handle(self, handle):
        dispatcher = self.make(handle)
        status = dispatcher.dispatch(QueryRequest.status())
        assert isinstance(status, QueryResponse) and status.payload is not None
        assert status.payload["status"]["backend"] == "fast"
        pinned = dispatcher.dispatch(QueryRequest.pin(1))
        assert pinned.ok and pinned.payload == {"pinned": 1}
        dispatcher.dispatch(QueryRequest.unpin(1))

    def test_batch_partial_failure_executes_siblings(self, handle):
        request = parse_request({"op": BATCH_OP, "ops": [
            {"op": "cdf", "x": 500.0},
            {"op": "cdf", "x": True},
            {"op": "size"},
        ], "id": 11})
        response = self.make(handle).dispatch(request)
        assert isinstance(response, BatchResponse)
        assert [r.ok for r in response.results] == [True, False, True]
        assert response.results[1].error == "bad_request"
        assert response.request_id == 11

    def test_invalid_batch_slots_are_traced(self, handle):
        sink = MemorySink()
        dispatcher = self.make(handle, sink)
        request = parse_request({"op": BATCH_OP, "ops": [{"op": "nope"}]})
        dispatcher.dispatch(request)
        failures = [e for e in sink.queries if not e.ok]
        assert [e.op for e in failures] == ["nope"]

    def test_dispatch_wire_speaks_the_legacy_dicts(self, handle):
        dispatcher = self.make(handle)
        wire = dispatcher.dispatch_wire({"op": "quantile", "q": 0.5, "id": 3})
        assert wire["ok"] is True and wire["id"] == 3
        assert wire["value"] == pytest.approx(handle.quantile(0.5))
        bad = dispatcher.dispatch_wire({"op": "cdf"})
        assert bad == {
            "ok": False, "error": "bad_request", "message": bad["message"]
        }


class TestDeprecationShims:
    def test_query_payload_warns_and_delegates(self):
        from repro.net.service_endpoint import _query_payload

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            payload = _query_payload("fraction_between", (1.0, 2.0))
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert payload == {"op": "fraction", "a": 1.0, "b": 2.0}
