"""Query engine: correctness, LRU caching, validation, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.obs import MemorySink, ObserverHub
from repro.service.query import QueryEngine
from repro.service.store import EstimateStore

from tests.service.test_store import make_estimate, publish


class FakeClock:
    """A deterministic clock advancing a fixed step per read."""

    def __init__(self, step: float = 0.001):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture()
def store() -> EstimateStore:
    s = EstimateStore()
    publish(s)
    return s


class TestAnswers:
    def test_cdf_matches_estimate(self, store):
        engine = QueryEngine(store)
        estimate = store.latest().estimate
        for x in (-5.0, 0.0, 15.0, 25.0, 40.0, 100.0):
            assert engine.cdf(x) == pytest.approx(float(estimate.evaluate(x)))

    def test_quantile_matches_estimate(self, store):
        engine = QueryEngine(store)
        estimate = store.latest().estimate
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert engine.quantile(q) == pytest.approx(float(estimate.quantile(q)[0]))

    def test_quantile_inverts_cdf_on_polyline(self, store):
        engine = QueryEngine(store)
        for x in (12.0, 20.0, 33.0):
            assert engine.quantile(engine.cdf(x)) == pytest.approx(x, abs=1e-9)

    def test_fraction_between(self, store):
        engine = QueryEngine(store)
        expected = engine.cdf(30.0) - engine.cdf(10.0)
        assert engine.fraction_between(10.0, 30.0) == pytest.approx(expected)
        # infinite upper bound: the ">= threshold" query from the paper
        assert engine.fraction_between(20.0, float("inf")) == pytest.approx(
            1.0 - engine.cdf(20.0)
        )

    def test_network_size(self, store):
        engine = QueryEngine(store)
        assert engine.network_size() == pytest.approx(100.0)

    def test_network_size_unavailable_without_estimate(self):
        store = EstimateStore()
        publish(store, size_estimate=None)
        engine = QueryEngine(store)
        with pytest.raises(ServiceError) as excinfo:
            engine.network_size()
        assert excinfo.value.code == "unavailable"

    def test_versioned_query_pins_old_snapshot(self, store):
        engine = QueryEngine(store)
        before = engine.cdf(15.0, version=1)
        publish(store, offset=100.0)
        assert engine.cdf(15.0, version=1) == pytest.approx(before)
        assert engine.cdf(15.0) != pytest.approx(before)


class TestValidation:
    def test_quantile_level_out_of_range(self, store):
        engine = QueryEngine(store)
        for q in (-0.1, 1.5):
            with pytest.raises(ServiceError) as excinfo:
                engine.quantile(q)
            assert excinfo.value.code == "bad_request"

    def test_nan_arguments_rejected(self, store):
        engine = QueryEngine(store)
        with pytest.raises(ServiceError):
            engine.cdf(float("nan"))
        with pytest.raises(ServiceError):
            engine.fraction_between(float("nan"), 1.0)

    def test_empty_interval_rejected(self, store):
        engine = QueryEngine(store)
        with pytest.raises(ServiceError) as excinfo:
            engine.fraction_between(5.0, 1.0)
        assert excinfo.value.code == "bad_request"

    def test_empty_store_is_unavailable(self):
        engine = QueryEngine(EstimateStore())
        with pytest.raises(ServiceError) as excinfo:
            engine.cdf(1.0)
        assert excinfo.value.code == "unavailable"

    def test_negative_cache_size_rejected(self, store):
        with pytest.raises(ServiceError):
            QueryEngine(store, cache_size=-1)


class TestCache:
    def test_repeat_queries_hit(self, store):
        engine = QueryEngine(store)
        engine.cdf(15.0)
        engine.cdf(15.0)
        engine.cdf(15.0)
        info = engine.cache_info()
        assert info["hits"] == 2 and info["misses"] == 1

    def test_cache_keyed_by_version(self, store):
        engine = QueryEngine(store)
        engine.cdf(15.0)
        publish(store, offset=1.0)
        engine.cdf(15.0)  # same args, new latest version: a miss
        assert engine.cache_info()["misses"] == 2

    def test_lru_evicts_oldest(self, store):
        engine = QueryEngine(store, cache_size=2)
        engine.cdf(1.0)
        engine.cdf(2.0)
        engine.cdf(3.0)  # evicts the x=1 entry
        engine.cdf(1.0)
        info = engine.cache_info()
        assert info["hits"] == 0 and info["size"] == 2

    def test_recently_used_survives(self, store):
        engine = QueryEngine(store, cache_size=2)
        engine.cdf(1.0)
        engine.cdf(2.0)
        engine.cdf(1.0)  # refresh x=1
        engine.cdf(3.0)  # evicts x=2, not x=1
        engine.cdf(1.0)
        assert engine.cache_info()["hits"] == 2

    def test_cache_disabled(self, store):
        engine = QueryEngine(store, cache_size=0)
        engine.cdf(15.0)
        engine.cdf(15.0)
        info = engine.cache_info()
        assert info["hits"] == 0 and info["size"] == 0

    def test_clear_cache(self, store):
        engine = QueryEngine(store)
        engine.cdf(15.0)
        engine.clear_cache()
        engine.cdf(15.0)
        assert engine.cache_info()["misses"] == 2


class TestObservability:
    def test_events_carry_op_version_and_latency(self, store):
        sink = MemorySink()
        hub = ObserverHub([sink])
        engine = QueryEngine(store, hub=hub, clock=FakeClock())
        engine.cdf(15.0)
        engine.cdf(15.0)
        engine.quantile(0.5)
        assert [e.op for e in sink.queries] == ["cdf", "cdf", "quantile"]
        assert [e.cache_hit for e in sink.queries] == [False, True, False]
        assert all(e.version == 1 for e in sink.queries)
        assert all(e.ok for e in sink.queries)
        assert all(e.latency_s and e.latency_s > 0 for e in sink.queries)

    def test_metrics_counters_and_histogram(self, store):
        hub = ObserverHub()
        engine = QueryEngine(store, hub=hub, clock=FakeClock())
        engine.cdf(15.0)
        engine.cdf(15.0)
        with pytest.raises(ServiceError):
            engine.quantile(2.0)
        snapshot = hub.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["queries_total"] == 3
        assert counters["queries_cdf_total"] == 2
        assert counters["query_cache_hits_total"] == 1
        assert counters["query_cache_misses_total"] == 2
        assert counters["query_errors_total"] == 1
        assert snapshot["histograms"]["query_latency_s"]["count"] == 3

    def test_failed_query_event_carries_error_code(self, store):
        sink = MemorySink()
        engine = QueryEngine(store, hub=ObserverHub([sink]))
        with pytest.raises(ServiceError):
            engine.fraction_between(9.0, 1.0)
        event = sink.queries[-1]
        assert not event.ok
        assert event.error == "bad_request"

    def test_cold_store_queries_count_as_unavailable_not_errors_only(self):
        # A restarted service with nothing recovered answers
        # "unavailable" — an operational signal tracked separately from
        # caller mistakes (which only land in query_errors_total).
        hub = ObserverHub()
        engine = QueryEngine(EstimateStore(), hub=hub, clock=FakeClock())
        with pytest.raises(ServiceError) as excinfo:
            engine.cdf(15.0)
        assert excinfo.value.code == "unavailable"
        with pytest.raises(ServiceError):
            engine.quantile(2.0)  # caller mistake: bad_request
        counters = hub.metrics.snapshot()["counters"]
        assert counters["queries_unavailable_total"] == 1
        assert counters["query_errors_total"] == 2

    def test_evicted_version_counts_as_unavailable(self, store):
        hub = ObserverHub()
        engine = QueryEngine(store, hub=hub, clock=FakeClock())
        with pytest.raises(ServiceError) as excinfo:
            engine.cdf(15.0, version=42)
        assert excinfo.value.code == "unavailable"
        assert (
            hub.metrics.counter("queries_unavailable_total").snapshot() == 1
        )
