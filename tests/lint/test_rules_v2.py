"""The project-wide rules ADM009-ADM013: each fires on the bad shape and
stays quiet on the blessed one (including cross-file resolution through
fixture packages linted out of a temp directory)."""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import lint_paths, lint_source


def _codes(violations):
    return [v.code for v in violations]


def _lint_pkg(tmp_path: Path, select: set[str], **files: str):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        (pkg / f"{name}.py").write_text(source)
    return lint_paths([str(tmp_path)], select=select)


# ---------------------------------------------------------------------
# ADM009: orphaned tasks / un-awaited coroutines
# ---------------------------------------------------------------------


class TestOrphanedTasks:
    def test_fire_and_forget_create_task(self):
        violations = lint_source(
            "import asyncio\n"
            "async def go(coro):\n"
            "    asyncio.create_task(coro)\n",
            select={"ADM009"},
        )
        assert _codes(violations) == ["ADM009"]
        assert "fire-and-forget" in violations[0].message

    def test_chained_loop_receiver_is_still_seen(self):
        # asyncio.get_running_loop().create_task(...) has no pure
        # attribute chain; the spawn must be recognised anyway.
        violations = lint_source(
            "import asyncio\n"
            "async def go(coro):\n"
            "    asyncio.get_running_loop().create_task(coro)\n",
            select={"ADM009"},
        )
        assert _codes(violations) == ["ADM009"]

    def test_orphaned_task_binding(self):
        violations = lint_source(
            "import asyncio\n"
            "async def go(coro):\n"
            "    task = asyncio.create_task(coro)\n",
            select={"ADM009"},
        )
        assert _codes(violations) == ["ADM009"]
        assert "orphaned" in violations[0].message

    def test_discard_only_done_callback(self):
        violations = lint_source(
            "import asyncio\n"
            "class Pool:\n"
            "    def spawn(self, coro):\n"
            "        task = asyncio.create_task(coro)\n"
            "        self._inflight.add(task)\n"
            "        task.add_done_callback(self._inflight.discard)\n",
            select={"ADM009"},
        )
        assert _codes(violations) == ["ADM009"]
        assert "never retrieved" in violations[0].message

    def test_observed_task_is_clean(self):
        violations = lint_source(
            "import asyncio\n"
            "class Pool:\n"
            "    def spawn(self, coro):\n"
            "        task = asyncio.create_task(coro)\n"
            "        self._inflight.add(task)\n"
            "        task.add_done_callback(self._on_done)\n",
            select={"ADM009"},
        )
        assert violations == []

    def test_awaited_task_is_clean(self):
        violations = lint_source(
            "import asyncio\n"
            "async def go(coro):\n"
            "    task = asyncio.create_task(coro)\n"
            "    await task\n",
            select={"ADM009"},
        )
        assert violations == []

    def test_dropped_local_coroutine(self):
        violations = lint_source(
            "async def pump():\n"
            "    pass\n"
            "def tick():\n"
            "    pump()\n",
            select={"ADM009"},
        )
        assert _codes(violations) == ["ADM009"]
        assert "never awaited" in violations[0].message

    def test_dropped_self_method_coroutine(self):
        violations = lint_source(
            "class Node:\n"
            "    async def push(self):\n"
            "        pass\n"
            "    def tick(self):\n"
            "        self.push()\n",
            select={"ADM009"},
        )
        assert _codes(violations) == ["ADM009"]

    def test_cross_file_dropped_coroutine(self, tmp_path):
        report = _lint_pkg(
            tmp_path,
            {"ADM009"},
            helpers="async def pump():\n    pass\n",
            caller=(
                "from pkg.helpers import pump\n"
                "def tick():\n"
                "    pump()\n"
            ),
        )
        assert _codes(report.violations) == ["ADM009"]
        assert "pump" in report.violations[0].message

    def test_awaiting_cross_file_coroutine_is_clean(self, tmp_path):
        report = _lint_pkg(
            tmp_path,
            {"ADM009"},
            helpers="async def pump():\n    pass\n",
            caller=(
                "from pkg.helpers import pump\n"
                "async def tick():\n"
                "    await pump()\n"
            ),
        )
        assert report.violations == []


# ---------------------------------------------------------------------
# ADM010: blocking calls in async defs
# ---------------------------------------------------------------------


class TestBlockingInAsync:
    def test_time_sleep(self):
        violations = lint_source(
            "import time\n"
            "async def serve():\n"
            "    time.sleep(1)\n",
            select={"ADM010"},
        )
        assert _codes(violations) == ["ADM010"]
        assert "time.sleep" in violations[0].message

    def test_subprocess_and_sync_io(self):
        violations = lint_source(
            "import subprocess\n"
            "from pathlib import Path\n"
            "async def serve(p: Path):\n"
            "    subprocess.run(['ls'])\n"
            "    open('x')\n"
            "    p.read_text()\n",
            select={"ADM010"},
        )
        assert _codes(violations) == ["ADM010", "ADM010", "ADM010"]

    def test_async_sleep_is_clean(self):
        violations = lint_source(
            "import asyncio\n"
            "async def serve():\n"
            "    await asyncio.sleep(1)\n",
            select={"ADM010"},
        )
        assert violations == []

    def test_sync_def_is_not_flagged(self):
        violations = lint_source(
            "import time\n"
            "def worker():\n"
            "    time.sleep(1)\n",
            select={"ADM010"},
        )
        assert violations == []

    def test_nested_sync_def_is_exempt(self):
        # Nested sync defs are commonly shipped to run_in_executor.
        violations = lint_source(
            "import time\n"
            "async def serve(loop):\n"
            "    def work():\n"
            "        time.sleep(1)\n"
            "    await loop.run_in_executor(None, work)\n",
            select={"ADM010"},
        )
        assert violations == []


# ---------------------------------------------------------------------
# ADM011: snapshot immutability
# ---------------------------------------------------------------------


class TestSnapshotImmutability:
    def test_attribute_assignment_on_annotated_param(self):
        violations = lint_source(
            "def poke(snap: EstimateSnapshot):\n"
            "    snap.version = 99\n",
            select={"ADM011"},
        )
        assert _codes(violations) == ["ADM011"]

    def test_store_lookup_result_is_tracked(self):
        violations = lint_source(
            "def poke(store):\n"
            "    snap = store.latest()\n"
            "    snap.estimate.fractions[0] = 1.0\n",
            select={"ADM011"},
        )
        assert _codes(violations) == ["ADM011"]

    def test_object_setattr_escape_hatch(self):
        violations = lint_source(
            "def poke(snap: EstimateSnapshot):\n"
            "    object.__setattr__(snap, 'version', 99)\n",
            select={"ADM011"},
        )
        assert _codes(violations) == ["ADM011"]

    def test_mutating_method_through_snapshot(self):
        violations = lint_source(
            "def poke(store):\n"
            "    snap = store.get(3)\n"
            "    snap.estimate.thresholds.sort()\n",
            select={"ADM011"},
        )
        assert _codes(violations) == ["ADM011"]

    def test_reads_and_rebinding_are_clean(self):
        violations = lint_source(
            "def read(snap: EstimateSnapshot):\n"
            "    x = snap.version\n"
            "    snap = None\n"
            "    return x\n",
            select={"ADM011"},
        )
        assert violations == []

    def test_store_module_is_exempt(self, tmp_path):
        store = tmp_path / "store.py"
        store.write_text(
            "def publish(snap: EstimateSnapshot):\n"
            "    object.__setattr__(snap, 'version', 1)\n"
        )
        report = lint_paths([str(store)], select={"ADM011"})
        assert report.violations == []

    def test_adopt_result_is_tracked(self):
        violations = lint_source(
            "def replay(store, snap):\n"
            "    mine = store.adopt(snap)\n"
            "    mine.version = 99\n",
            select={"ADM011"},
        )
        assert _codes(violations) == ["ADM011"]

    def test_container_annotations_are_not_snapshots(self):
        # A dict *holding* snapshots is mutable; only a direct
        # EstimateSnapshot annotation marks the value itself frozen.
        violations = lint_source(
            "def collect(by_version: dict[int, EstimateSnapshot], snap):\n"
            "    by_version[snap.version] = snap\n",
            select={"ADM011"},
        )
        assert violations == []

    def test_optional_and_quoted_annotations_are_tracked(self):
        violations = lint_source(
            "def poke(snap: 'EstimateSnapshot | None'):\n"
            "    if snap is not None:\n"
            "        snap.version = 99\n",
            select={"ADM011"},
        )
        assert _codes(violations) == ["ADM011"]

    def test_persist_store_module_is_not_exempt(self, tmp_path):
        # repro.persist.store wraps stores but holds no construction
        # privilege: the bare store.py exemption must not leak to it.
        pkg = tmp_path / "repro" / "persist"
        pkg.mkdir(parents=True)
        for init in (tmp_path / "repro", pkg):
            (init / "__init__.py").write_text("")
        (pkg / "store.py").write_text(
            "def poke(snap: EstimateSnapshot):\n"
            "    object.__setattr__(snap, 'version', 1)\n"
        )
        report = lint_paths([str(tmp_path)], select={"ADM011"})
        assert _codes(report.violations) == ["ADM011"]

    def test_cross_file_return_annotation(self, tmp_path):
        report = _lint_pkg(
            tmp_path,
            {"ADM011"},
            provider=(
                "def current() -> 'EstimateSnapshot':\n"
                "    ...\n"
            ),
            consumer=(
                "from pkg.provider import current\n"
                "def poke():\n"
                "    snap = current()\n"
                "    snap.version = 1\n"
            ),
        )
        assert _codes(report.violations) == ["ADM011"]


# ---------------------------------------------------------------------
# ADM012: seed taint
# ---------------------------------------------------------------------


class TestSeedTaint:
    def test_hard_coded_seed(self):
        violations = lint_source(
            "from repro.rngs import make_rng\n"
            "def sample():\n"
            "    rng = make_rng(0)\n",
            select={"ADM012"},
        )
        assert _codes(violations) == ["ADM012"]
        assert "hard-coded" in violations[0].message

    def test_no_seed_draws_entropy(self):
        violations = lint_source(
            "from numpy.random import default_rng\n"
            "def sample():\n"
            "    rng = default_rng()\n",
            select={"ADM012"},
        )
        assert _codes(violations) == ["ADM012"]
        assert "OS entropy" in violations[0].message

    def test_derived_seed_is_clean(self):
        violations = lint_source(
            "from repro.rngs import make_rng\n"
            "def sample(seed):\n"
            "    rng = make_rng(seed ^ 0x5EED)\n",
            select={"ADM012"},
        )
        assert violations == []

    def test_constant_flow_through_local_name(self):
        violations = lint_source(
            "from repro.rngs import make_rng\n"
            "def sample():\n"
            "    base = 1234\n"
            "    rng = make_rng(base)\n",
            select={"ADM012"},
        )
        assert _codes(violations) == ["ADM012"]

    def test_untraceable_argument_is_allowed(self):
        # Silence over false alarms: node_id is not provably constant.
        violations = lint_source(
            "from repro.rngs import derive\n"
            "def wire(node_id):\n"
            "    rng = derive(node_id, 'wire')\n",
            select={"ADM012"},
        )
        assert violations == []

    def test_cross_file_constant_helper(self, tmp_path):
        report = _lint_pkg(
            tmp_path,
            {"ADM012"},
            helpers="def fixed_seed():\n    return 1234\n",
            sim=(
                "from pkg.helpers import fixed_seed\n"
                "from repro.rngs import make_rng\n"
                "def sample():\n"
                "    rng = make_rng(fixed_seed())\n"
            ),
        )
        assert _codes(report.violations) == ["ADM012"]

    def test_cross_file_deriving_helper_is_clean(self, tmp_path):
        report = _lint_pkg(
            tmp_path,
            {"ADM012"},
            helpers="def derived(seed):\n    return seed * 2 + 1\n",
            sim=(
                "from pkg.helpers import derived\n"
                "from repro.rngs import make_rng\n"
                "def sample(run_seed):\n"
                "    rng = make_rng(derived(run_seed))\n"
            ),
        )
        assert report.violations == []

    def test_rngs_module_is_exempt(self, tmp_path):
        rngs = tmp_path / "rngs.py"
        rngs.write_text(
            "from numpy.random import default_rng\n"
            "def make_rng(seed=None):\n"
            "    return default_rng()\n"
        )
        report = lint_paths([str(rngs)], select={"ADM012"})
        assert report.violations == []


# ---------------------------------------------------------------------
# ADM013: obs name discipline
# ---------------------------------------------------------------------

_REGISTRY = (
    "METRIC_NAMES = frozenset({'rounds_total'})\n"
    "SPAN_NAMES = frozenset({'round'})\n"
    "METRIC_NAME_TEMPLATES = frozenset({'queries_{op}_total'})\n"
)


class TestObsNameDiscipline:
    def _lint(self, tmp_path, emitter: str):
        pkg = tmp_path / "pkg"
        obs = pkg / "obs"
        obs.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (obs / "__init__.py").write_text("")
        (obs / "events.py").write_text(_REGISTRY)
        (pkg / "emitter.py").write_text(emitter)
        return lint_paths([str(tmp_path)], select={"ADM013"})

    def test_registered_names_are_clean(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def tick(metrics, hub):\n"
            "    metrics.counter('rounds_total').inc()\n"
            "    with hub.span('round'):\n"
            "        pass\n",
        )
        assert report.violations == []

    def test_unregistered_metric_name(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def tick(metrics):\n"
            "    metrics.counter('rounds_grand_total').inc()\n",
        )
        assert _codes(report.violations) == ["ADM013"]
        assert "not registered" in report.violations[0].message

    def test_unregistered_span_name(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def tick(hub):\n"
            "    with hub.span('mystery'):\n"
            "        pass\n",
        )
        assert _codes(report.violations) == ["ADM013"]

    def test_computed_name_is_flagged(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def tick(metrics, name):\n"
            "    metrics.counter(name).inc()\n",
        )
        assert _codes(report.violations) == ["ADM013"]
        assert "computed" in report.violations[0].message

    def test_fstring_matching_template_is_clean(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def tick(metrics, op):\n"
            "    metrics.counter(f'queries_{op}_total').inc()\n",
        )
        assert report.violations == []

    def test_fstring_without_template_is_flagged(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def tick(metrics, op):\n"
            "    metrics.counter(f'rounds_{op}_extra').inc()\n",
        )
        assert _codes(report.violations) == ["ADM013"]

    def test_obs_package_is_exempt(self, tmp_path):
        pkg = tmp_path / "pkg"
        obs = pkg / "obs"
        obs.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (obs / "__init__.py").write_text("")
        (obs / "events.py").write_text(_REGISTRY)
        (obs / "observer.py").write_text(
            "def tick(metrics):\n"
            "    metrics.counter('internal_bootstrap_total').inc()\n"
        )
        report = lint_paths([str(tmp_path)], select={"ADM013"})
        assert report.violations == []

    def test_without_registry_only_literalness_enforced(self):
        violations = lint_source(
            "def tick(metrics, name):\n"
            "    metrics.counter('anything_total').inc()\n"
            "    metrics.counter(name).inc()\n",
            select={"ADM013"},
        )
        assert _codes(violations) == ["ADM013"]
        assert "computed" in violations[0].message
