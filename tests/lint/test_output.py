"""Suppressions, baselines, and SARIF output — the v2 reporting surface."""

from __future__ import annotations

import json
from pathlib import Path

import jsonschema
import pytest

from repro.lint.baseline import Baseline, apply_baseline
from repro.lint.engine import LintEngine, lint_paths, main
from repro.lint.rules import get_rules
from repro.lint.sarif import to_sarif
from repro.lint.suppress import parse_suppressions, split_suppressed
from repro.lint.violation import LintReport, Violation

FIXTURES = Path(__file__).parent / "fixtures"

#: one ADM001 (global random) + one ADM007 (wall clock) per line
BAD_TWO_RULES = """\
import random
import time


def sample():
    a = random.random()
    b = time.time()
    return a + b
"""


def _violation(code="ADM001", path="x.py", line=3, message="m"):
    return Violation(code=code, message=message, path=path, line=line)


# ---------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------


class TestSuppressions:
    def test_parse_blanket_and_coded(self):
        source = (
            "a = 1  # adam2: noqa\n"
            "b = 2  # adam2: noqa[ADM001, adm007]\n"
            "c = 3  # adam2: noqa[]\n"
            "d = 4\n"
        )
        parsed = parse_suppressions(source)
        assert parsed[1] is None
        assert parsed[2] == {"ADM001", "ADM007"}
        assert parsed[3] == frozenset()
        assert 4 not in parsed

    def test_split_by_line_and_code(self):
        source = "x\ny  # adam2: noqa[ADM001]\n"
        violations = [
            _violation(code="ADM001", line=1),
            _violation(code="ADM001", line=2),
            _violation(code="ADM007", line=2),
        ]
        kept, suppressed = split_suppressed(violations, source)
        assert [(v.code, v.line) for v in kept] == [("ADM001", 1), ("ADM007", 2)]
        assert [(v.code, v.line) for v in suppressed] == [("ADM001", 2)]

    def test_engine_honours_noqa(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "\n"
            "\n"
            "def sample():\n"
            "    return random.random()  # adam2: noqa[ADM001]\n"
        )
        report = lint_paths([str(bad)], select={"ADM001"})
        assert report.violations == []
        assert [v.code for v in report.suppressed] == ["ADM001"]

    def test_noqa_for_other_code_does_not_suppress(self):
        violations = LintEngine(get_rules({"ADM001"})).check_source(
            "import random\n"
            "\n"
            "\n"
            "def sample():\n"
            "    return random.random()  # adam2: noqa[ADM007]\n"
        )
        assert [v.code for v in violations] == ["ADM001"]


# ---------------------------------------------------------------------
# Baseline semantics
# ---------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_preserves_counts_and_justifications(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline.from_violations(
            [_violation(), _violation(), _violation(code="ADM007")]
        )
        baseline.justifications[("ADM001", "x.py", "m")] = "legacy"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.counts == {
            ("ADM001", "x.py", "m"): 2,
            ("ADM007", "x.py", "m"): 1,
        }
        assert loaded.justifications == {("ADM001", "x.py", "m"): "legacy"}

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").counts == {}

    def test_malformed_file_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_apply_splits_and_budgets(self):
        # Two identical findings baselined once: one is matched, the
        # second (new occurrence) still fails the gate.
        report = LintReport(violations=[_violation(), _violation()])
        apply_baseline(report, Baseline.from_violations([_violation()]))
        assert len(report.violations) == 1
        assert len(report.baselined) == 1
        assert report.stale_baseline == []

    def test_fixed_findings_become_stale(self):
        report = LintReport(violations=[])
        apply_baseline(report, Baseline.from_violations([_violation()]))
        assert report.violations == []
        assert len(report.stale_baseline) == 1
        assert "ADM001" in report.stale_baseline[0]

    def test_update_carries_surviving_justifications(self):
        previous = Baseline.from_violations([_violation(), _violation(code="ADM007")])
        previous.justifications[("ADM001", "x.py", "m")] = "keep me"
        previous.justifications[("ADM007", "x.py", "m")] = "drop me"
        updated = Baseline.from_violations([_violation()], previous)
        assert updated.counts == {("ADM001", "x.py", "m"): 1}
        assert updated.justifications == {("ADM001", "x.py", "m"): "keep me"}

    def test_cli_baseline_gate(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_TWO_RULES)
        baseline = tmp_path / "baseline.json"
        scope = ["--select", "ADM001,ADM007"]

        # Without a baseline the findings fail the run.
        assert main([str(bad), *scope]) == 1
        capsys.readouterr()

        # --update-baseline records them and exits 0 ...
        assert main([str(bad), *scope, "--baseline", str(baseline), "--update-baseline"]) == 0
        assert "baseline updated" in capsys.readouterr().out
        entries = json.loads(baseline.read_text())["entries"]
        assert {e["code"] for e in entries} == {"ADM001", "ADM007"}

        # ... after which the same findings pass the gate as baselined.
        assert main([str(bad), *scope, "--baseline", str(baseline)]) == 0
        assert "2 baselined" in capsys.readouterr().out

        # A *new* finding on top of the baseline still fails.
        bad.write_text(BAD_TWO_RULES + "\n\nc = random.random()\n")
        assert main([str(bad), *scope, "--baseline", str(baseline)]) == 1
        capsys.readouterr()

        # Fixing everything leaves stale entries, visible under --verbose.
        bad.write_text("x = 1\n")
        assert main([str(bad), *scope, "--baseline", str(baseline), "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "stale baseline entry" in out

    def test_cli_update_baseline_requires_path(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean), "--update-baseline"]) == 2
        assert "requires --baseline" in capsys.readouterr().err


# ---------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------


class TestSarif:
    @pytest.fixture(scope="class")
    def schema(self):
        return json.loads((FIXTURES / "sarif-2.1.0-subset.schema.json").read_text())

    def _document(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            BAD_TWO_RULES
            + "\n\ndef again():\n    return random.random()  # adam2: noqa[ADM001]\n"
        )
        report = lint_paths([str(tmp_path)], select={"ADM001", "ADM007"})
        return to_sarif(report, get_rules())

    def test_document_validates_against_schema(self, tmp_path, schema):
        jsonschema.validate(self._document(tmp_path), schema)

    def test_rules_results_and_suppressions(self, tmp_path):
        document = self._document(tmp_path)
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "adam2-lint"
        assert [r["id"] for r in driver["rules"]] == [
            f"ADM{i:03d}" for i in range(1, 14)
        ]
        by_rule = {}
        for result in run["results"]:
            by_rule.setdefault(result["ruleId"], []).append(result)
        assert set(by_rule) == {"ADM001", "ADM007"}
        suppressed = [
            r for r in run["results"]
            if r.get("suppressions", [{}])[0].get("kind") == "inSource"
        ]
        assert len(suppressed) == 1
        # ruleIndex must point back into the rules array.
        for result in run["results"]:
            assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]

    def test_locations_are_one_based(self, tmp_path):
        document = self._document(tmp_path)
        for result in document["runs"][0]["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_cli_sarif_output_validates(self, tmp_path, schema, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_TWO_RULES)
        assert main([str(bad), "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        jsonschema.validate(document, schema)
        assert document["version"] == "2.1.0"

    def test_parse_errors_surface_in_invocations(self, tmp_path, schema, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        assert main([str(tmp_path), "--format", "sarif"]) == 2
        document = json.loads(capsys.readouterr().out)
        jsonschema.validate(document, schema)
        invocation = document["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"]
