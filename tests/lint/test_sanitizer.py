"""Runtime sanitizer integration: injected invariant violations must be
caught in all three backends, and declared non-conserving modes must be
whitelisted by declaration, not silently."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import Adam2Config
from repro.core.conservation import (
    NON_CONSERVING_MODES,
    is_mass_conserving,
    non_conserving_reason,
)
from repro.core.protocol import Adam2Protocol
from repro.asyncsim.adam2 import AsyncAdam2
from repro.asyncsim.engine import AsyncEngine
from repro.fastsim.adam2 import Adam2Simulation
from repro.fastsim.exchange import sequential_round
from repro.lint.sanitizer import (
    ENV_FLAG,
    FastsimSanitizer,
    InvariantViolation,
    sanitize_enabled,
)
from repro.overlay.random_graph import FullMeshOverlay
from repro.rngs import make_rng
from repro.simulation.runner import build_engine
from repro.workloads.synthetic import uniform_workload

CONFIG = Adam2Config(points=6, rounds_per_instance=8)


# ---------------------------------------------------------------------
# Flag resolution and mode registry
# ---------------------------------------------------------------------


def test_env_var_switches_sanitizer_on(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    assert not sanitize_enabled()
    monkeypatch.setenv(ENV_FLAG, "1")
    assert sanitize_enabled()
    assert not sanitize_enabled(False)  # explicit flag wins over env
    monkeypatch.setenv(ENV_FLAG, "0")
    assert not sanitize_enabled()
    assert sanitize_enabled(True)


def test_literal_join_mode_is_registered_by_declaration():
    assert not is_mass_conserving("literal")
    assert "literal" in NON_CONSERVING_MODES
    reason = non_conserving_reason("literal")
    assert reason is not None and "mass" in reason
    assert is_mass_conserving("symmetric")


# ---------------------------------------------------------------------
# Fastsim backend
# ---------------------------------------------------------------------


def _fast_sim(**kwargs) -> Adam2Simulation:
    return Adam2Simulation(
        uniform_workload(0, 1000), n_nodes=24, config=kwargs.pop("config", CONFIG),
        seed=7, sanitize=True, **kwargs,
    )


def test_fastsim_clean_run_passes():
    result = _fast_sim().run_instance()
    assert result.joined.any()


def test_fastsim_detects_mass_leak():
    sim = _fast_sim()
    inner = sim.kernel

    def leaky_kernel(averaged, extremes, joined, rng, join_mode="symmetric", excluded=None, buffers=None):
        active = inner(averaged, extremes, joined, rng, join_mode, excluded=excluded, buffers=buffers)
        averaged[:, 0] += 1e-3  # create fraction mass out of thin air
        return active

    sim.kernel = leaky_kernel
    with pytest.raises(InvariantViolation) as exc:
        sim.run_instance()
    assert exc.value.invariant == "mass-conservation"
    assert exc.value.backend == "fastsim"
    assert exc.value.round_index == 0


def test_fastsim_detects_non_monotone_estimate():
    # Literal mode: the mass check is whitelisted by declaration, so the
    # injected non-monotone interpolation points are what gets caught.
    sim = _fast_sim(config=Adam2Config(points=6, rounds_per_instance=8, join_mode="literal"))
    inner = sim.kernel

    def scrambling_kernel(averaged, extremes, joined, rng, join_mode="symmetric", excluded=None, buffers=None):
        active = inner(averaged, extremes, joined, rng, join_mode, excluded=excluded, buffers=buffers)
        averaged[0, 0] = 0.9  # F(t_0) > F(t_1): no longer a CDF
        averaged[0, 1] = 0.1
        return active

    sim.kernel = scrambling_kernel
    with pytest.raises(InvariantViolation) as exc:
        sim.run_instance()
    assert exc.value.invariant == "monotone-cdf"


def test_fastsim_literal_join_mode_is_whitelisted():
    config = Adam2Config(points=6, rounds_per_instance=8, join_mode="literal")
    result = _fast_sim(config=config).run_instance()
    assert result.joined.any()


def test_fastsim_detects_weight_violation():
    sim = _fast_sim(config=Adam2Config(points=6, rounds_per_instance=8, join_mode="literal"))
    inner = sim.kernel

    def inflating_kernel(averaged, extremes, joined, rng, join_mode="symmetric", excluded=None, buffers=None):
        active = inner(averaged, extremes, joined, rng, join_mode, excluded=excluded, buffers=buffers)
        averaged[0, -1] = 1.5  # a size weight above 1 is impossible
        return active

    sim.kernel = inflating_kernel
    with pytest.raises(InvariantViolation) as exc:
        sim.run_instance()
    assert exc.value.invariant == "weight-sum"


def test_fastsim_sanitizer_unit_checks():
    sanitizer = FastsimSanitizer()
    averaged = np.asarray([[0.2, 0.6, 0.0], [0.4, 0.8, 1.0]])
    sanitizer.begin_instance(averaged, "symmetric", instance=0)
    sanitizer.after_round(averaged, k=2, round_index=0)  # untouched: fine
    averaged[0, 1] += 0.1  # keeps the row monotone, breaks column mass
    with pytest.raises(InvariantViolation):
        sanitizer.after_round(averaged, k=2, round_index=1)
    sanitizer.rebaseline(averaged)  # declare the mutation legitimate
    sanitizer.after_round(averaged, k=2, round_index=2)


# ---------------------------------------------------------------------
# Round-based simulation backend
# ---------------------------------------------------------------------


class LeakyAdam2Protocol(Adam2Protocol):
    """Adam2 whose exchange inflates the initiator's fraction mass."""

    def exchange(self, initiator, responder, engine):
        result = super().exchange(initiator, responder, engine)
        adam2 = initiator.state[self.name]
        for state in adam2.instances.values():
            state.h.fractions = state.h.fractions * 1.01 + 1e-4
        return result


def test_simulation_engine_detects_mass_leak():
    protocol = LeakyAdam2Protocol(CONFIG)
    engine = build_engine(
        uniform_workload(0, 1000), 16, [protocol], make_rng(3), sanitize=True
    )
    protocol.trigger_instance(engine)
    with pytest.raises(InvariantViolation) as exc:
        engine.run(CONFIG.rounds_per_instance)
    assert exc.value.invariant == "mass-conservation"
    assert exc.value.backend == "simulation"


def test_simulation_engine_clean_run_passes():
    protocol = Adam2Protocol(CONFIG)
    engine = build_engine(
        uniform_workload(0, 1000), 16, [protocol], make_rng(3), sanitize=True
    )
    protocol.trigger_instance(engine)
    engine.run(CONFIG.rounds_per_instance + 2)
    estimates = protocol.estimates(engine)
    assert estimates


class TuplelessProtocol(Adam2Protocol):
    def exchange(self, initiator, responder, engine):
        super().exchange(initiator, responder, engine)
        return None  # drops network accounting


def test_simulation_engine_detects_payload_violation():
    protocol = TuplelessProtocol(CONFIG)
    engine = build_engine(
        uniform_workload(0, 1000), 16, [protocol], make_rng(3), sanitize=True
    )
    protocol.trigger_instance(engine)
    with pytest.raises(InvariantViolation) as exc:
        engine.run(2)
    assert exc.value.invariant == "exchange-payload"


# ---------------------------------------------------------------------
# Async backend
# ---------------------------------------------------------------------


class LeakyAsyncAdam2(AsyncAdam2):
    """Async Adam2 whose request handling inflates local fraction mass."""

    def on_request(self, node, payload, engine):
        response = super().on_request(node, payload, engine)
        adam2 = node.state[self.name]
        for state in adam2.instances.values():
            state.h.fractions = state.h.fractions * 1.1 + 1e-3
        return response


def _async_engine(protocol) -> AsyncEngine:
    rng = make_rng(11)
    values = uniform_workload(0, 1000).sample(16, rng)
    engine = AsyncEngine(FullMeshOverlay(), protocol, rng, sanitize=True)
    engine.populate(values)
    return engine


def test_asyncsim_detects_mass_leak():
    protocol = LeakyAsyncAdam2(CONFIG)
    engine = _async_engine(protocol)
    protocol.trigger_instance(engine)
    with pytest.raises(InvariantViolation) as exc:
        engine.run_for(10.0)
    assert exc.value.invariant == "mass-conservation"
    assert exc.value.backend == "asyncsim"


def test_asyncsim_clean_run_passes():
    protocol = AsyncAdam2(CONFIG)
    engine = _async_engine(protocol)
    protocol.trigger_instance(engine)
    engine.run_for(float(CONFIG.rounds_per_instance + 2))
    assert protocol.estimates(engine)


# ---------------------------------------------------------------------
# Sequential kernel sanity under instrumentation (regression guard)
# ---------------------------------------------------------------------


def test_sequential_kernel_conserves_mass_under_sanitizer():
    rng = make_rng(0)
    values = rng.uniform(0, 100, size=32)
    thresholds = np.linspace(0, 100, 5)
    averaged = np.concatenate(
        ((values[:, None] <= thresholds[None, :]).astype(float), np.zeros((32, 1))), axis=1
    )
    averaged[0, -1] = 1.0
    joined = np.zeros(32, dtype=bool)
    joined[0] = True
    extremes = np.stack((values, values), axis=1)

    sanitizer = FastsimSanitizer()
    sanitizer.begin_instance(averaged, "symmetric")
    for round_index in range(10):
        sequential_round(averaged, extremes, joined, rng)
        sanitizer.after_round(averaged, k=5, round_index=round_index)
