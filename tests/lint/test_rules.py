"""Per-rule unit tests: one positive and one negative fixture per ADM rule."""

from __future__ import annotations

import textwrap

from repro.lint.engine import lint_source


def codes(source: str, path: str = "src/repro/fastsim/example.py") -> list[str]:
    return [v.code for v in lint_source(textwrap.dedent(source), path=path)]


class TestADM001NoGlobalRng:
    def test_flags_stdlib_global_random(self):
        src = """
            import random

            def pick():
                return random.randint(0, 10)
        """
        assert "ADM001" in codes(src)

    def test_flags_numpy_legacy_global(self):
        src = """
            import numpy as np

            def pick():
                return np.random.randint(0, 10)
        """
        assert "ADM001" in codes(src)

    def test_flags_seedless_default_rng(self):
        src = """
            import numpy as np

            def make():
                return np.random.default_rng()
        """
        violations = lint_source(textwrap.dedent(src), path="src/repro/x.py")
        assert any(v.code == "ADM001" and "seedless" in v.message for v in violations)

    def test_flags_adhoc_seeded_default_rng(self):
        src = """
            import numpy as np

            def make(node_id):
                return np.random.default_rng(abs(hash(("wire", node_id))))
        """
        assert "ADM001" in codes(src)

    def test_allows_construction_inside_rngs_module(self):
        src = """
            import numpy as np

            def make_rng(seed=None):
                return np.random.default_rng(seed)
        """
        assert codes(src, path="src/repro/rngs.py") == []

    def test_allows_threaded_generator(self):
        src = """
            import numpy as np

            def pick(rng: np.random.Generator) -> int:
                return int(rng.integers(0, 10))
        """
        assert "ADM001" not in codes(src)


class TestADM002RngParameter:
    def test_flags_public_function_drawing_from_module_state(self):
        src = """
            from somewhere import shared_rng

            def jitter(x):
                return x + shared_rng.uniform(-1, 1)
        """
        assert "ADM002" in codes(src)

    def test_allows_rng_parameter(self):
        src = """
            def jitter(x, rng):
                return x + rng.uniform(-1, 1)
        """
        assert codes(src) == []

    def test_allows_self_attribute_rng(self):
        src = """
            class Node:
                def step(self):
                    return self.rng.random()
        """
        assert codes(src) == []

    def test_allows_lambda_with_own_rng_parameter(self):
        src = """
            def uniform_workload(low, high):
                return Workload(lambda n, rng: rng.uniform(low, high, size=n))
        """
        assert codes(src) == []

    def test_private_functions_exempt(self):
        src = """
            from somewhere import shared_rng

            def _internal(x):
                return x + shared_rng.uniform(-1, 1)
        """
        assert "ADM002" not in codes(src)


class TestADM003FloatEquality:
    def test_flags_estimate_equality(self):
        src = """
            def agree(a, b):
                return a.fraction == b.fraction
        """
        assert "ADM003" in codes(src)

    def test_flags_estimate_vs_float_literal(self):
        src = """
            def half(state):
                return state.weight == 0.5
        """
        assert "ADM003" in codes(src)

    def test_allows_tolerance_helpers_and_sentinels(self):
        src = """
            import math

            def agree(a, b):
                return math.isclose(a.fraction, b.fraction)

            def fresh(state):
                return state.weight == 0.0

            def nan_guard(p):
                return not (p.fraction == p.fraction)
        """
        assert codes(src) == []


class TestADM004ExchangeConservation:
    def test_flags_exchange_returning_none(self):
        src = """
            from repro.simulation.engine import Protocol

            class Broken(Protocol):
                def exchange(self, initiator, responder, engine):
                    return None
        """
        assert "ADM004" in codes(src)

    def test_flags_unregistered_join_mode(self):
        src = """
            def round_(state, join_mode="symmetric"):
                if join_mode == "leaky":
                    state *= 0.5
        """
        assert "ADM004" in codes(src)

    def test_allows_registered_mode_and_tuple_return(self):
        src = """
            from repro.core.conservation import register_non_conserving
            from repro.simulation.engine import Protocol

            register_non_conserving("leaky", "drops half the mass, biases fractions low")

            def round_(state, join_mode="symmetric"):
                if join_mode == "leaky":
                    state *= 0.5

            class Fine(Protocol):
                def exchange(self, initiator, responder, engine):
                    return 64, 64
        """
        assert codes(src) == []

    def test_symmetric_never_needs_registration(self):
        src = """
            def round_(state, join_mode="symmetric"):
                if join_mode == "symmetric":
                    state += 0
        """
        assert codes(src) == []


class TestADM005NoSwallowedErrors:
    def test_flags_bare_except(self):
        src = """
            def run(fn):
                try:
                    fn()
                except:
                    pass
        """
        assert "ADM005" in codes(src)

    def test_flags_swallowed_simulation_error(self):
        src = """
            from repro.errors import SimulationError

            def run(fn):
                try:
                    fn()
                except SimulationError:
                    pass
        """
        assert "ADM005" in codes(src)

    def test_allows_narrow_handled_exceptions(self):
        src = """
            from repro.errors import OverlayError

            def run(table, node_id):
                try:
                    return table[node_id]
                except KeyError:
                    raise OverlayError(f"unknown node {node_id}") from None
        """
        assert codes(src) == []


class TestADM006NoMutableDefaults:
    def test_flags_list_default(self):
        src = """
            def gather(into=[]):
                into.append(1)
                return into
        """
        assert "ADM006" in codes(src)

    def test_allows_none_default(self):
        src = """
            def gather(into=None):
                into = [] if into is None else into
                into.append(1)
                return into
        """
        assert codes(src) == []


class TestADM007NoWallClock:
    def test_flags_wall_clock_in_simulation_module(self):
        src = """
            import time

            def run_round(engine):
                engine.started = time.time()
        """
        assert "ADM007" in codes(src, path="src/repro/simulation/engine.py")

    def test_flags_datetime_now(self):
        src = """
            from datetime import datetime

            def stamp(node):
                node.seen = datetime.now()
        """
        assert "ADM007" in codes(src, path="src/repro/fastsim/adam2.py")

    def test_experiment_drivers_exempt(self):
        src = """
            import time

            def run_experiment():
                started = time.time()
                return time.time() - started
        """
        assert codes(src, path="src/repro/experiments/cli.py") == []


class TestADM008NetOutsideRuntime:
    def test_flags_socket_import_outside_net(self):
        src = """
            import socket

            def probe(host):
                return socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        """
        assert "ADM008" in codes(src, path="src/repro/simulation/engine.py")

    def test_flags_socket_from_import(self):
        src = """
            from socket import socket

            def probe():
                return socket()
        """
        assert "ADM008" in codes(src, path="src/repro/core/node.py")

    def test_flags_asyncio_endpoint_call(self):
        src = """
            import asyncio

            async def connect(host, port):
                return await asyncio.open_connection(host, port)
        """
        assert "ADM008" in codes(src, path="src/repro/api/backends.py")

    def test_flags_datagram_endpoint_call(self):
        src = """
            async def bind(loop, proto):
                return await loop.create_datagram_endpoint(proto, local_addr=("::", 0))
        """
        assert "ADM008" in codes(src, path="src/repro/obs/profile.py")

    def test_flags_wall_clock_outside_net(self):
        src = """
            import time

            def run_round(engine):
                engine.started = time.monotonic()
        """
        assert "ADM008" in codes(src, path="src/repro/asyncsim/engine.py")

    def test_net_package_exempt(self):
        src = """
            import socket
            import time

            async def bind(loop, proto):
                started = time.monotonic()
                return await loop.create_datagram_endpoint(proto), started
        """
        assert codes(src, path="src/repro/net/transport.py") == []

    def test_drivers_keep_clock_exemption_but_not_sockets(self):
        src = """
            import socket
            import time

            def run_experiment():
                return time.time()
        """
        found = codes(src, path="src/repro/experiments/cli.py")
        assert found == ["ADM008"]  # the socket import, not the clock

    def test_service_package_is_fenced_from_sockets_and_clocks(self):
        """The serving layer is NOT exempt: its TCP frontend must live in
        repro.net (service_endpoint), and latency reads must go through
        repro.obs.wall_clock rather than the host clock directly."""
        src = """
            import asyncio
            import time

            async def serve(handle, host, port):
                started = time.perf_counter()
                return await asyncio.start_server(handle, host, port), started
        """
        found = codes(src, path="src/repro/service/query.py")
        assert found.count("ADM008") == 2  # the endpoint call and the clock

    def test_service_endpoint_module_is_under_the_net_exemption(self):
        src = """
            import asyncio

            async def serve(handler, host, port):
                return await asyncio.start_server(handler, host, port)
        """
        assert codes(src, path="src/repro/net/service_endpoint.py") == []

    def test_service_worker_module_is_under_the_net_exemption(self):
        """The SO_REUSEPORT worker pool opens raw sockets and spawns
        serving processes; it is legal only because it lives in
        repro.net — the same source anywhere else must trip ADM008."""
        src = """
            import socket

            def reuseport_listener(host, port):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((host, port))
                sock.listen(128)
                return sock
        """
        assert codes(src, path="src/repro/net/service_worker.py") == []
        assert "ADM008" in codes(src, path="src/repro/service/worker.py")

    def test_fsync_outside_persist_is_fenced(self):
        src = """
            import os

            def seal(handle):
                handle.flush()
                os.fsync(handle.fileno())
        """
        assert "ADM008" in codes(src, path="src/repro/service/store.py")

    def test_fdatasync_outside_persist_is_fenced(self):
        src = """
            import os

            def seal(fd):
                os.fdatasync(fd)
        """
        assert "ADM008" in codes(src, path="src/repro/obs/sinks.py")

    def test_net_package_is_not_exempt_from_the_durable_fence(self):
        """repro.net owns sockets and clocks, not durability: an fsync
        there is as much a layering leak as anywhere else."""
        src = """
            import os

            def seal(handle):
                os.fsync(handle.fileno())
        """
        assert "ADM008" in codes(src, path="src/repro/net/httpstatus.py")

    def test_persist_package_owns_durable_syncs(self):
        src = """
            import os

            def seal(handle):
                os.fsync(handle.fileno())
                os.fdatasync(handle.fileno())
        """
        assert codes(src, path="src/repro/persist/log.py") == []

    def test_persist_package_is_still_fenced_from_sockets(self):
        """The durability layer is local-disk only: sockets, endpoints
        and raw clocks stay illegal inside repro.persist."""
        src = """
            import socket
            import time

            def probe():
                return socket.socket(), time.monotonic()
        """
        found = codes(src, path="src/repro/persist/log.py")
        assert found.count("ADM008") == 2

    def test_real_service_sources_lint_clean(self):
        from pathlib import Path

        from repro.lint.engine import lint_paths

        service_dir = (
            Path(__file__).resolve().parents[2] / "src" / "repro" / "service"
        )
        report = lint_paths([str(service_dir)])
        assert report.files_checked >= 6
        assert report.violations == [], "\n".join(
            v.format_text() for v in report.violations
        )


class TestSelection:
    def test_select_restricts_rules(self):
        src = """
            import random

            def gather(into=[]):
                return random.random()
        """
        from repro.lint.engine import lint_source as ls

        only_006 = ls(textwrap.dedent(src), select={"ADM006"})
        assert {v.code for v in only_006} == {"ADM006"}
