"""Lint engine and ``adam2-lint`` CLI behaviour, plus the repo-clean gate."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.engine import LintEngine, lint_paths, main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

BAD_FIXTURE = """\
import random


def gather(into=[]):
    try:
        return into + [random.random()]
    except:
        pass
"""


def test_repo_lints_clean():
    """The acceptance gate: `adam2-lint src/` exits 0 on this repository."""
    report = lint_paths([str(REPO_SRC)])
    assert report.files_checked > 80
    assert report.parse_errors == []
    assert report.violations == [], "\n".join(v.format_text() for v in report.violations)


def test_violations_found_in_fixture_tree(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_FIXTURE)
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 1
    assert {"ADM001", "ADM005", "ADM006"} <= set(report.codes())


def test_discovery_skips_caches(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1")
    (tmp_path / "ok.py").write_text("x = 1")
    files = LintEngine.discover([str(tmp_path)])
    assert [f.name for f in files] == ["ok.py"]


def test_parse_error_reported(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    report = lint_paths([str(tmp_path)])
    assert not report.ok
    assert report.parse_errors


def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_FIXTURE)

    # Non-zero exit with rule codes in JSON output on violations.
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert {"ADM001", "ADM005", "ADM006"} <= set(payload["codes"])
    assert all({"code", "path", "line", "hint"} <= set(v) for v in payload["violations"])

    # Exit 0 on a clean file.
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert "0 violation(s)" in capsys.readouterr().out

    # Exit 2 on unknown rule codes and on parse errors.
    assert main([str(clean), "--select", "ADM999"]) == 2
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2


def test_cli_missing_path_is_an_error(tmp_path, capsys):
    # A typo'd path must not silently pass the lint gate (exit 0, 0 files).
    assert main([str(tmp_path / "nowhere")]) == 2
    assert "no such file or directory" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 14):
        assert f"ADM{i:03d}" in out


def test_cli_ignore(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_FIXTURE)

    # Ignoring every triggered rule turns the run clean.
    assert main([str(bad), "--ignore", "ADM001,ADM002,ADM005,ADM006"]) == 0
    capsys.readouterr()

    # Unknown codes in --ignore are a usage error, exactly like --select.
    assert main([str(bad), "--ignore", "ADM999"]) == 2
    assert "unknown rule codes" in capsys.readouterr().err


def test_cli_verbose_prints_resolved_rules(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean), "--verbose", "--select", "ADM001,ADM009"]) == 0
    err = capsys.readouterr().err
    assert "ADM001:no-global-rng" in err
    assert "ADM009:orphaned-tasks" in err
    assert "ADM002" not in err
    assert "jobs:" in err


def test_parallel_run_matches_sequential(tmp_path):
    # Ten files, a finding in each; results must be identical and
    # deterministically ordered regardless of worker count.
    for i in range(10):
        (tmp_path / f"mod_{i}.py").write_text(BAD_FIXTURE)
    sequential = lint_paths([str(tmp_path)], jobs=1)
    parallel = lint_paths([str(tmp_path)], jobs=2)
    assert parallel.files_checked == sequential.files_checked == 10
    assert parallel.violations == sequential.violations


def test_repo_lint_with_committed_baseline(capsys):
    """The CI gate invocation: exit 0 against the committed baseline."""
    repo_root = REPO_SRC.parents[1]
    baseline = repo_root / ".adam2-baseline.json"
    assert baseline.exists(), "commit .adam2-baseline.json (the CI lint gate reads it)"
    assert main([str(REPO_SRC), "--baseline", str(baseline)]) == 0
    capsys.readouterr()
