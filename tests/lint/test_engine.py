"""Lint engine and ``adam2-lint`` CLI behaviour, plus the repo-clean gate."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.engine import LintEngine, lint_paths, main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

BAD_FIXTURE = """\
import random


def gather(into=[]):
    try:
        return into + [random.random()]
    except:
        pass
"""


def test_repo_lints_clean():
    """The acceptance gate: `adam2-lint src/` exits 0 on this repository."""
    report = lint_paths([str(REPO_SRC)])
    assert report.files_checked > 80
    assert report.parse_errors == []
    assert report.violations == [], "\n".join(v.format_text() for v in report.violations)


def test_violations_found_in_fixture_tree(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_FIXTURE)
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 1
    assert {"ADM001", "ADM005", "ADM006"} <= set(report.codes())


def test_discovery_skips_caches(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1")
    (tmp_path / "ok.py").write_text("x = 1")
    files = LintEngine.discover([str(tmp_path)])
    assert [f.name for f in files] == ["ok.py"]


def test_parse_error_reported(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    report = lint_paths([str(tmp_path)])
    assert not report.ok
    assert report.parse_errors


def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_FIXTURE)

    # Non-zero exit with rule codes in JSON output on violations.
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert {"ADM001", "ADM005", "ADM006"} <= set(payload["codes"])
    assert all({"code", "path", "line", "hint"} <= set(v) for v in payload["violations"])

    # Exit 0 on a clean file.
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert "0 violation(s)" in capsys.readouterr().out

    # Exit 2 on unknown rule codes and on parse errors.
    assert main([str(clean), "--select", "ADM999"]) == 2
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2


def test_cli_missing_path_is_an_error(tmp_path, capsys):
    # A typo'd path must not silently pass the lint gate (exit 0, 0 files).
    assert main([str(tmp_path / "nowhere")]) == 2
    assert "no such file or directory" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("ADM001", "ADM002", "ADM003", "ADM004", "ADM005", "ADM006", "ADM007"):
        assert code in out
