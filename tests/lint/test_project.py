"""The cross-file project index: symbol resolution and seed-taint summaries."""

from __future__ import annotations

import ast
import pickle

from repro.lint.project import (
    ProjectIndex,
    build_project_index,
    classify_seed_expr,
    is_seed_name,
    project_module_name,
)
from repro.lint.rules.base import ModuleContext


def _index(**sources: str) -> ProjectIndex:
    modules = [
        ModuleContext.from_source(source, path=f"pkg/{name}.py")
        for name, source in sources.items()
    ]
    return build_project_index(modules)


class TestSeedNames:
    def test_seed_like_names(self):
        for name in ("seed", "run_seed", "_seed", "seed_base", "rng", "node_rng"):
            assert is_seed_name(name), name

    def test_non_seed_names(self):
        for name in ("node_id", "count", "seedling", "ring"):
            assert not is_seed_name(name), name


class TestModuleName:
    def test_strips_src_anchor_and_init(self):
        assert project_module_name("src/repro/net/node.py") == "repro.net.node"
        assert project_module_name("src/repro/obs/__init__.py") == "repro.obs"

    def test_temp_dir_prefix_is_bounded(self):
        name = project_module_name("/tmp/pytest-123/t0/fixture/pkg/mod.py")
        assert name.endswith("fixture.pkg.mod")
        assert len(name.split(".")) <= 6


class TestSummaries:
    def test_function_info(self):
        index = _index(mod="""
import asyncio

async def pump(queue):
    await queue.get()

def fixed_seed():
    return 42

def derived(seed):
    return seed * 2 + 1
""")
        module = index.resolve_module("pkg.mod")
        assert module is not None
        assert module.functions["pump"].is_async
        assert module.functions["fixed_seed"].seed_taint == "constant"
        assert module.functions["derived"].seed_taint == "seed"

    def test_methods_are_qualified(self):
        index = _index(mod="""
class Node:
    async def push(self):
        pass
""")
        module = index.resolve_module("mod")
        assert module is not None
        assert module.functions["Node.push"].is_async
        assert module.classes == ("Node",)

    def test_string_sets_extracted(self):
        index = _index(events="""
METRIC_NAMES = frozenset({"b_total", "a_total"})
NOT_STRINGS = frozenset({1, 2})
""")
        assert index.registry_strings("events", "METRIC_NAMES") == {"a_total", "b_total"}
        assert index.registry_strings("events", "NOT_STRINGS") == frozenset()
        assert index.registry_strings("absent.module", "METRIC_NAMES") is None


class TestResolution:
    def test_resolve_import_through_from_import(self):
        index = _index(
            helpers="def fixed():\n    return 7\n",
            caller="from pkg.helpers import fixed\n",
        )
        caller = index.resolve_module("pkg.caller")
        assert caller is not None
        info = index.resolve_import(caller, ["fixed"])
        assert info is not None and info.seed_taint == "constant"

    def test_resolve_import_through_module_import(self):
        index = _index(
            helpers="async def pump():\n    pass\n",
            caller="import pkg.helpers as helpers\n",
        )
        caller = index.resolve_module("pkg.caller")
        assert caller is not None
        info = index.resolve_import(caller, ["helpers", "pump"])
        assert info is not None and info.is_async

    def test_ambiguous_suffix_does_not_resolve(self):
        modules = [
            ModuleContext.from_source("x = 1", path="a/node.py"),
            ModuleContext.from_source("x = 2", path="b/node.py"),
        ]
        index = build_project_index(modules)
        assert index.resolve_module("node") is None

    def test_index_is_picklable(self):
        # The index ships to process-pool workers; AST nodes must not leak in.
        index = _index(mod="def f(seed):\n    return seed\n")
        clone = pickle.loads(pickle.dumps(index))
        module = clone.resolve_module("mod")
        assert module is not None and "f" in module.functions


class TestClassify:
    def _classify(self, expr: str, tainted=(), constants=()):
        node = ast.parse(expr, mode="eval").body
        return classify_seed_expr(node, set(tainted), set(constants))

    def test_literals_are_constant(self):
        assert self._classify("0") == "constant"
        assert self._classify("0x5EED + 1") == "constant"

    def test_tainted_names_win(self):
        assert self._classify("seed", tainted={"seed"}) == "seed"
        assert self._classify("seed ^ 0x5EED", tainted={"seed"}) == "seed"
        assert self._classify("int(spec['seed'])") == "seed"
        assert self._classify("opts.seed + 3") == "seed"

    def test_draw_from_tainted_generator(self):
        assert self._classify("rng.integers(0, 2**32)", tainted={"rng"}) == "seed"

    def test_unknowns_stay_unknown(self):
        assert self._classify("node_id") == "unknown"
        assert self._classify("mystery()") == "unknown"

    def test_constant_propagation_through_names(self):
        assert self._classify("base + 1", constants={"base"}) == "constant"
