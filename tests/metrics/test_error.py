"""Tests for the paper's error metrics."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.metrics.error import (
    aggregate_errors,
    cdf_errors,
    error_grid,
    errors_at_points,
    matrix_errors,
)


class TestErrorGrid:
    def test_integer_grid_for_small_domains(self):
        grid = error_grid(10.0, 20.0)
        assert np.array_equal(grid, np.arange(10.0, 21.0))

    def test_includes_non_integer_extremes(self):
        grid = error_grid(9.5, 20.5)
        assert grid[0] == 9.5
        assert grid[-1] == 20.5

    def test_linspace_for_huge_domains(self):
        grid = error_grid(0.0, 1e9, max_points=1001)
        assert grid.size == 1001
        assert grid[0] == 0.0
        assert grid[-1] == 1e9

    def test_degenerate_domain(self):
        assert np.array_equal(error_grid(5.0, 5.0), [5.0])

    def test_invalid_domain(self):
        with pytest.raises(EstimationError):
            error_grid(5.0, 1.0)


class TestCdfErrors:
    def test_zero_for_identical(self, step_truth):
        exact = EstimatedCDF(
            step_truth.support(), step_truth.evaluate(step_truth.support()),
            step_truth.minimum, step_truth.maximum,
        )
        # Piecewise-linear vs step: exact at atoms, off between them.
        errors = cdf_errors(step_truth, exact)
        assert errors.maximum <= 1.0
        at_atoms = np.abs(exact.evaluate(step_truth.support()) - step_truth.evaluate(step_truth.support()))
        assert at_atoms.max() < 1e-12

    def test_known_residual(self):
        truth = EmpiricalCDF(np.asarray([0.0, 10.0]))
        estimate = EstimatedCDF(np.asarray([0.0, 10.0]), np.asarray([0.5, 1.0]), 0.0, 10.0)
        errors = cdf_errors(truth, estimate)
        # Truth jumps to 0.5 at 0 then 1.0 at 10; estimate is linear
        # 0.5 -> 1.0; max gap is at x just below 10: 1.0 vs ~0.95.
        assert errors.maximum == pytest.approx(0.45, abs=0.02)

    def test_max_at_least_avg(self, step_truth, perfect_estimate):
        errors = cdf_errors(step_truth, perfect_estimate)
        assert errors.maximum >= errors.average


class TestErrorsAtPoints:
    def test_exact_fractions(self, step_truth):
        thresholds = np.asarray([100.0, 400.0])
        errors = errors_at_points(step_truth, thresholds, step_truth.evaluate(thresholds))
        assert errors.maximum == 0.0

    def test_known_offset(self, step_truth):
        thresholds = np.asarray([100.0, 400.0])
        fractions = step_truth.evaluate(thresholds) + np.asarray([0.1, 0.02])
        errors = errors_at_points(step_truth, thresholds, fractions)
        assert errors.maximum == pytest.approx(0.1)
        assert errors.average == pytest.approx(0.06)

    def test_empty_rejected(self, step_truth):
        with pytest.raises(EstimationError):
            errors_at_points(step_truth, np.asarray([]), np.asarray([]))


class TestMatrixErrors:
    def test_aggregation_semantics(self, step_truth):
        thresholds = np.asarray([100.0, 200.0, 400.0, 800.0])
        exact = step_truth.evaluate(thresholds)
        fractions = np.vstack([exact, exact + 0.05])
        entire, at_points = matrix_errors(
            step_truth, thresholds, fractions,
            np.full(2, step_truth.minimum), np.full(2, step_truth.maximum),
        )
        # at-points max is over ALL nodes: driven by the offset row.
        assert at_points.maximum == pytest.approx(0.05, abs=1e-9)
        # avg is the mean over nodes of per-node means.
        assert at_points.average == pytest.approx(0.025, abs=1e-9)
        assert entire.maximum >= at_points.maximum

    def test_node_sampling(self, step_truth):
        thresholds = np.asarray([100.0, 800.0])
        exact = step_truth.evaluate(thresholds)
        fractions = np.tile(exact, (30, 1))
        rng = np.random.default_rng(0)
        entire, _ = matrix_errors(
            step_truth, thresholds, fractions,
            np.full(30, step_truth.minimum), np.full(30, step_truth.maximum),
            node_sample=5, rng=rng,
        )
        assert entire.maximum <= 1.0

    def test_empty_rejected(self, step_truth):
        with pytest.raises(EstimationError):
            matrix_errors(step_truth, np.asarray([1.0]), np.empty((0, 1)), np.empty(0), np.empty(0))


class TestAggregateErrors:
    def test_max_of_max_avg_of_avg(self, step_truth):
        thresholds = step_truth.support()
        exact = step_truth.evaluate(thresholds)
        good = EstimatedCDF(thresholds, exact, step_truth.minimum, step_truth.maximum)
        bad = EstimatedCDF(thresholds, np.clip(exact + 0.2, 0, 1), step_truth.minimum, step_truth.maximum)
        combined = aggregate_errors(step_truth, [good, bad])
        solo_bad = cdf_errors(step_truth, bad)
        solo_good = cdf_errors(step_truth, good)
        assert combined.maximum == pytest.approx(solo_bad.maximum)
        assert combined.average == pytest.approx((solo_bad.average + solo_good.average) / 2)

    def test_empty_rejected(self, step_truth):
        with pytest.raises(EstimationError):
            aggregate_errors(step_truth, [])
