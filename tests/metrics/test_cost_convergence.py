"""Tests for the cost model, convergence traces, and estimation metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.types import ErrorPair
from repro.core.config import Adam2Config
from repro.metrics.convergence import ConvergenceTrace, fit_exponential_rate
from repro.metrics.cost import CostModel, instance_cost
from repro.metrics.estimation import confidence_estimation_error


class TestCostModel:
    def test_paper_numbers(self):
        """§VII-I: λ=50, 25 rounds, 3 instances -> ~120 kB per node."""
        model = instance_cost(Adam2Config(points=50, rounds_per_instance=25), instances=3)
        assert model.messages_per_instance == 50
        assert model.total_messages == 150
        assert 100_000 <= model.total_bytes <= 140_000
        assert model.estimation_time_seconds(1.0) == 75.0
        assert 1_200 <= model.bandwidth_bytes_per_second(1.0) <= 2_000

    def test_size_independence(self):
        # Cost depends only on protocol parameters, never on N.
        import dataclasses

        fields = {f.name for f in dataclasses.fields(CostModel)}
        assert "nodes" not in fields and "n" not in fields

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CostModel(message_bytes=0)
        model = CostModel(message_bytes=100)
        with pytest.raises(ConfigurationError):
            model.bandwidth_bytes_per_second(0)
        with pytest.raises(ConfigurationError):
            model.estimation_time_seconds(-1)


class TestConvergenceTrace:
    def test_record_and_final(self):
        trace = ConvergenceTrace()
        trace.record(1, ErrorPair(0.5, 0.1), ErrorPair(0.2, 0.05))
        trace.record(2, ErrorPair(0.4, 0.08), ErrorPair(0.1, 0.02))
        assert len(trace) == 2
        entire, points = trace.final()
        assert entire.maximum == 0.4
        assert points.average == 0.02

    def test_empty_final_raises(self):
        with pytest.raises(EstimationError):
            ConvergenceTrace().final()


class TestFitExponentialRate:
    def test_exact_exponential(self):
        rounds = np.arange(20)
        errors = 0.8**rounds
        assert fit_exponential_rate(rounds, errors) == pytest.approx(0.8, rel=1e-6)

    def test_floor_excluded(self):
        rounds = np.arange(30)
        errors = np.maximum(0.5**rounds, 1e-16)
        rate = fit_exponential_rate(rounds, errors, floor=1e-14)
        assert rate == pytest.approx(0.5, rel=0.05)

    def test_too_few_samples(self):
        with pytest.raises(EstimationError):
            fit_exponential_rate(np.asarray([1.0]), np.asarray([0.5]))

    def test_shape_mismatch(self):
        with pytest.raises(EstimationError):
            fit_exponential_rate(np.asarray([1.0, 2.0]), np.asarray([0.5]))


class TestConfidenceEstimationError:
    def test_perfect_estimation(self):
        true = np.asarray([0.1, 0.2])
        assert confidence_estimation_error(true, true) == 0.0

    def test_relative_semantics(self):
        true = np.asarray([0.1])
        est = np.asarray([0.05])
        assert confidence_estimation_error(true, est) == pytest.approx(0.5)

    def test_zero_true_errors_skipped(self):
        true = np.asarray([0.0, 0.1])
        est = np.asarray([0.5, 0.1])
        assert confidence_estimation_error(true, est) == 0.0

    def test_all_zero_raises(self):
        with pytest.raises(EstimationError):
            confidence_estimation_error(np.zeros(3), np.zeros(3))

    def test_shape_mismatch(self):
        with pytest.raises(EstimationError):
            confidence_estimation_error(np.zeros(2), np.zeros(3))
