"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro import rngs


class TestMakeRng:
    def test_seeded_is_reproducible(self):
        a = rngs.make_rng(7).random(5)
        b = rngs.make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rngs.make_rng(7).random(5)
        b = rngs.make_rng(8).random(5)
        assert not np.array_equal(a, b)

    def test_none_seed_works(self):
        assert rngs.make_rng(None).random() >= 0.0


class TestSpawn:
    def test_children_are_independent(self):
        root = rngs.make_rng(1)
        a = rngs.spawn(root)
        b = rngs.spawn(root)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_spawn_is_deterministic_given_seed(self):
        a = rngs.spawn(rngs.make_rng(2)).random(4)
        b = rngs.spawn(rngs.make_rng(2)).random(4)
        assert np.array_equal(a, b)

    def test_spawn_many_count(self):
        children = rngs.spawn_many(rngs.make_rng(3), 5)
        assert len(children) == 5

    def test_spawn_many_negative_raises(self):
        with pytest.raises(ValueError):
            rngs.spawn_many(rngs.make_rng(3), -1)

    def test_spawn_many_zero(self):
        assert rngs.spawn_many(rngs.make_rng(3), 0) == []


class TestDerive:
    def test_same_path_same_stream(self):
        a = rngs.derive(5, "churn", 3).random(4)
        b = rngs.derive(5, "churn", 3).random(4)
        assert np.array_equal(a, b)

    def test_different_paths_differ(self):
        a = rngs.derive(5, "churn", 3).random(4)
        b = rngs.derive(5, "churn", 4).random(4)
        assert not np.array_equal(a, b)

    def test_string_components_distinguish(self):
        a = rngs.derive(5, "alpha").random(4)
        b = rngs.derive(5, "beta").random(4)
        assert not np.array_equal(a, b)
