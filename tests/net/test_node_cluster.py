"""Node daemon and localhost cluster harness (in-process and subprocess)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.config import Adam2Config
from repro.errors import NetworkError
from repro.net.cluster import (
    LocalCluster,
    completed_from_summaries,
    run_process_cluster,
)
from repro.net.node import NodeDaemon
from repro.net.peers import PeerDirectory
from repro.rngs import make_rng, spawn

FAST = {"request_timeout": 0.05, "max_retries": 2}


def run(coro):
    return asyncio.run(coro)


class TestPeerDirectory:
    def test_suspicion_and_recovery(self):
        directory = PeerDirectory(suspicion_threshold=2)
        directory.add(1, ("127.0.0.1", 1000))
        directory.add(2, ("127.0.0.1", 1001))
        assert directory.mark_failure(1) is False
        assert directory.mark_failure(1) is True
        assert directory.healthy_ids() == [2]
        assert directory.suspected_ids() == [1]
        directory.mark_alive(1)
        assert directory.healthy_ids() == [1, 2]

    def test_select_prefers_healthy(self):
        rng = make_rng(0)
        directory = PeerDirectory(suspicion_threshold=1, probe_rate=0.0)
        directory.add(1, ("127.0.0.1", 1000))
        directory.add(2, ("127.0.0.1", 1001))
        directory.mark_failure(2)
        assert all(directory.select(rng).peer_id == 1 for _ in range(20))

    def test_select_probes_suspected(self):
        rng = make_rng(0)
        directory = PeerDirectory(suspicion_threshold=1, probe_rate=0.5)
        directory.add(1, ("127.0.0.1", 1000))
        directory.add(2, ("127.0.0.1", 1001))
        directory.mark_failure(2)
        picked = {directory.select(rng).peer_id for _ in range(50)}
        assert picked == {1, 2}

    def test_all_suspected_still_selectable(self):
        rng = make_rng(0)
        directory = PeerDirectory(suspicion_threshold=1)
        directory.add(1, ("127.0.0.1", 1000))
        directory.mark_failure(1)
        assert directory.select(rng).peer_id == 1


class TestNodeDaemon:
    def test_two_daemons_converge_on_one_instance(self):
        async def scenario():
            rng = make_rng(11)
            config = Adam2Config(points=6, rounds_per_instance=10)
            daemons = [
                NodeDaemon(i, float(v), config, spawn(rng),
                           gossip_period=0.01, transport_options=FAST,
                           sanitize=True)
                for i, v in enumerate([100.0, 900.0])
            ]
            for daemon in daemons:
                await daemon.open()
            daemons[0].add_peer(1, daemons[1].address)
            daemons[1].add_peer(0, daemons[0].address)
            try:
                await daemons[0].trigger_instance()
                await asyncio.gather(*(d.run(14) for d in daemons))
                await asyncio.gather(*(d.drain() for d in daemons))
            finally:
                for daemon in daemons:
                    daemon.close()
            for daemon in daemons:
                assert len(daemon.adam2.completed) == 1
                estimate = daemon.adam2.completed[0].estimate
                assert estimate.minimum == 100.0
                assert estimate.maximum == 900.0

        run(scenario())

    def test_rejects_bad_parameters(self):
        config = Adam2Config(points=6)
        rng = make_rng(0)
        with pytest.raises(NetworkError):
            NodeDaemon(-1, 1.0, config, rng)
        with pytest.raises(NetworkError):
            NodeDaemon(0, 1.0, config, rng, gossip_period=0.0)
        daemon = NodeDaemon(0, 1.0, config, rng)
        with pytest.raises(NetworkError):
            daemon.add_peer(0, ("127.0.0.1", 1))

    def test_crashed_daemon_stops_responding(self):
        async def scenario():
            rng = make_rng(12)
            config = Adam2Config(points=6, rounds_per_instance=8)
            a = NodeDaemon(0, 1.0, config, spawn(rng),
                           gossip_period=0.01, transport_options=FAST)
            b = NodeDaemon(1, 2.0, config, spawn(rng),
                           gossip_period=0.01, transport_options=FAST)
            await a.open()
            await b.open()
            a.add_peer(1, b.address)
            b.add_peer(0, a.address)
            try:
                b.crash()
                assert b.crashed
                await a.trigger_instance()
                await a.run(10)
                await a.drain()
                assert a.push_failures > 0
                assert a.directory.get(1).suspected
                # The instance still terminates locally.
                assert len(a.adam2.completed) == 1
            finally:
                a.close()
                b.close()

        run(scenario())


class TestLocalCluster:
    def test_cluster_runs_instance_to_completion(self):
        async def scenario():
            rng = make_rng(13)
            values = make_rng(14).uniform(0.0, 100.0, size=8)
            config = Adam2Config(points=8, rounds_per_instance=12)
            cluster = LocalCluster(
                values, config, rng,
                gossip_period=0.01, sanitize=True, transport_options=FAST,
            )
            async with cluster:
                instance_id = await cluster.trigger_instance()
                assert isinstance(instance_id, tuple)
                await cluster.run_rounds(16)
                await cluster.drain()
                completed = [d.adam2.completed for d in cluster.daemons]
            assert all(len(records) == 1 for records in completed)
            counters = cluster.counters()
            assert counters["messages_sent"] > 0
            assert counters["decode_errors"] == 0

        run(scenario())

    def test_crash_excludes_node_from_liveness(self):
        async def scenario():
            rng = make_rng(15)
            cluster = LocalCluster(
                np.arange(4, dtype=float), Adam2Config(points=4), rng,
                gossip_period=0.01, transport_options=FAST,
            )
            async with cluster:
                cluster.crash(3)
                assert len(cluster.live_daemons()) == 3
                assert cluster.attribute_values().size == 3
                with pytest.raises(NetworkError, match="crashed"):
                    await cluster.trigger_instance(3)

        run(scenario())

    def test_needs_two_nodes(self):
        with pytest.raises(NetworkError):
            LocalCluster([1.0], Adam2Config(points=4), make_rng(0))


class TestProcessCluster:
    def test_subprocess_nodes_run_an_instance(self):
        values = make_rng(16).uniform(0.0, 100.0, size=4)
        config = Adam2Config(points=6, rounds_per_instance=10)
        summaries = run_process_cluster(
            values, config, rounds=14, seed=77, trigger_at={0: 1},
            gossip_period=0.02, transport_options=FAST, timeout=60.0,
        )
        assert len(summaries) == 4
        assert {s["node_id"] for s in summaries} == {0, 1, 2, 3}
        completed = completed_from_summaries(summaries)
        reached = [records for records in completed.values() if records]
        assert len(reached) >= 3  # gossip redundancy: most nodes terminate
        record = reached[0][0]
        assert record.estimate.fractions.size == 6
        assert 0.0 <= record.estimate.fractions.min()
        total_sent = sum(s["messages_sent"] for s in summaries)
        assert total_sent > 0
