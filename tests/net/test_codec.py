"""Wire codec: round-trip fidelity, length budget, corruption handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import InstanceState
from repro.errors import CodecError
from repro.net.codec import (
    MSG_PULL,
    MSG_PUSH,
    MSG_SAMPLE_REQUEST,
    MSG_SAMPLE_RESPONSE,
    WIRE_VERSION,
    WireCodec,
)
from repro.rngs import make_rng


def random_state(rng: np.random.Generator, iid: tuple[int, int]) -> InstanceState:
    """A random, realistically-evolved instance state."""
    k = int(rng.integers(2, 12))
    kv = int(rng.integers(0, 5))
    values = rng.uniform(-50.0, 50.0, size=int(rng.integers(1, 4)))
    state = InstanceState.initial(
        instance_id=iid,
        values=values,
        thresholds=rng.uniform(-60.0, 60.0, size=k),
        v_thresholds=rng.uniform(-60.0, 60.0, size=kv),
        ttl=int(rng.integers(1, 60)),
        initiator=bool(rng.random() < 0.5),
        started_round=int(rng.integers(0, 1000)),
    )
    # A few merges produce non-trivial fractional masses.
    for _ in range(int(rng.integers(0, 4))):
        other = state.snapshot()
        other.h.fractions = rng.uniform(0.0, 2.0, size=k)
        other.weight = float(rng.random())
        other.count_average = float(rng.uniform(0.5, 3.0))
        state.merge_from(other)
    return state


def assert_states_equal(a: InstanceState, b: InstanceState) -> None:
    assert a.instance_id == b.instance_id
    assert a.ttl == b.ttl
    assert a.initiator == b.initiator
    assert a.started_round == b.started_round
    assert a.weight == b.weight
    assert a.count_average == b.count_average
    assert a.h.minimum == b.h.minimum
    assert a.h.maximum == b.h.maximum
    np.testing.assert_array_equal(a.h.thresholds, b.h.thresholds)
    np.testing.assert_array_equal(a.h.fractions, b.h.fractions)
    np.testing.assert_array_equal(a.v_thresholds, b.v_thresholds)
    np.testing.assert_array_equal(a.v_fractions, b.v_fractions)


class TestRoundTrip:
    def test_fuzz_push_pull_round_trip(self):
        """Float64 payloads survive encode/decode bit-for-bit."""
        rng = make_rng(101)
        codec = WireCodec()
        for trial in range(200):
            kind = MSG_PUSH if trial % 2 == 0 else MSG_PULL
            states = {}
            for index in range(int(rng.integers(0, 5))):
                iid = (int(rng.integers(0, 2**32)), index)
                states[iid] = random_state(rng, iid)
            sender = int(rng.integers(0, 2**32))
            msg_id = int(rng.integers(0, 2**63))
            datagram = codec.encode_states(kind, sender, msg_id, codec.fit_states(states))
            message = codec.decode(datagram)
            assert message.kind == kind
            assert message.sender == sender
            assert message.msg_id == msg_id
            assert set(message.states) == set(codec.fit_states(states))
            for iid, state in message.states.items():
                assert_states_equal(state, states[iid])

    def test_sample_round_trip(self):
        codec = WireCodec()
        request = codec.decode(codec.encode_sample_request(7, 99))
        assert request.kind == MSG_SAMPLE_REQUEST
        assert request.wants_reply
        values = make_rng(5).normal(size=17)
        response = codec.decode(codec.encode_sample_response(7, 99, values))
        assert response.kind == MSG_SAMPLE_RESPONSE
        assert not response.wants_reply
        np.testing.assert_array_equal(response.values, values)

    def test_decoded_state_merges_like_the_original(self):
        """A decoded snapshot is a drop-in InstanceState for merging."""
        rng = make_rng(6)
        codec = WireCodec()
        state = random_state(rng, (3, 0))
        wire = codec.decode(
            codec.encode_states(MSG_PUSH, 3, 1, {(3, 0): state})
        ).states[(3, 0)]
        local = state.snapshot()
        local.merge_from(wire)
        np.testing.assert_allclose(local.h.fractions, state.h.fractions)
        assert local.weight == state.weight


class TestBudget:
    def test_fit_states_keeps_largest_prefix(self):
        rng = make_rng(8)
        codec = WireCodec(max_datagram=512)
        states = {(0, i): random_state(rng, (0, i)) for i in range(40)}
        kept = codec.fit_states(states)
        assert 0 < len(kept) < len(states)
        assert list(kept) == list(states)[: len(kept)]  # prefix, order kept
        datagram = codec.encode_states(MSG_PUSH, 0, 1, kept)
        assert len(datagram) <= codec.max_datagram

    def test_encode_over_budget_raises(self):
        rng = make_rng(9)
        codec = WireCodec(max_datagram=256)
        states = {(0, i): random_state(rng, (0, i)) for i in range(30)}
        with pytest.raises(CodecError, match="budget"):
            codec.encode_states(MSG_PUSH, 0, 1, states)

    def test_tiny_budget_rejected(self):
        with pytest.raises(CodecError):
            WireCodec(max_datagram=16)


class TestValidation:
    def test_bad_magic_rejected(self):
        codec = WireCodec()
        datagram = bytearray(codec.encode_sample_request(1, 1))
        datagram[0] = ord("X")
        with pytest.raises(CodecError, match="magic"):
            codec.decode(bytes(datagram))

    def test_unknown_version_rejected(self):
        codec = WireCodec()
        datagram = bytearray(codec.encode_sample_request(1, 1))
        datagram[2] = WIRE_VERSION + 1
        with pytest.raises(CodecError, match="version"):
            codec.decode(bytes(datagram))

    def test_truncation_fuzz_never_half_parses(self):
        """Every prefix of a valid datagram raises, never half-parses."""
        rng = make_rng(33)
        codec = WireCodec()
        states = {(1, i): random_state(rng, (1, i)) for i in range(3)}
        datagram = codec.encode_states(MSG_PUSH, 1, 4, codec.fit_states(states))
        for cut in range(len(datagram) - 1):
            with pytest.raises(CodecError):
                codec.decode(datagram[:cut])

    def test_corruption_fuzz_is_total(self):
        """Random byte flips either decode cleanly or raise CodecError —
        nothing else (no crashes, no other exception types)."""
        rng = make_rng(34)
        codec = WireCodec()
        states = {(1, i): random_state(rng, (1, i)) for i in range(2)}
        datagram = bytearray(codec.encode_states(MSG_PUSH, 1, 4, states))
        for _ in range(300):
            corrupted = bytearray(datagram)
            for _ in range(int(rng.integers(1, 4))):
                corrupted[int(rng.integers(0, len(corrupted)))] = int(rng.integers(0, 256))
            try:
                codec.decode(bytes(corrupted))
            except CodecError:
                pass

    def test_non_tuple_instance_id_rejected(self):
        rng = make_rng(35)
        codec = WireCodec()
        state = random_state(rng, (0, 0))
        with pytest.raises(CodecError, match="instance id"):
            codec.encode_states(MSG_PUSH, 0, 1, {"named-instance": state})
