"""Robustness: the real-network runtime under loss and crash failures.

A 32-node localhost cluster runs one aggregation instance with 5%
injected datagram loss while two nodes fail-stop mid-instance.  The
surviving cluster must still converge — every live node terminates with
a max CDF error below 0.05 at the interpolation points — and the
mass-conservation sanitizer brackets every merge along the way (the
per-delivery invariant holds even when replies are lost, which is
exactly why the transport's at-most-once dedup matters).
"""

from __future__ import annotations

from repro.api import run
from repro.core.config import Adam2Config
from repro.workloads.synthetic import uniform_workload

N_NODES = 32
CRASHES = 2
CONFIG = Adam2Config(points=16, rounds_per_instance=35)
WORKLOAD = uniform_workload(0, 1000)


def test_converges_under_loss_and_crashes():
    # sanitize=True: any mass-conservation / range / monotonicity
    # violation raises InvariantViolation and fails the test outright.
    result = run(
        CONFIG, WORKLOAD, backend="net",
        n_nodes=N_NODES, instances=1, seed=21,
        gossip_period=0.02,
        sanitize=True,
        drop_rate=0.05,
        crash_nodes=CRASHES,
        crash_round=18,
        transport_options={"request_timeout": 0.08, "max_retries": 3},
    )
    summary = result.instances[0]
    counters = result.extras["net_counters"]

    # The fault model actually fired: datagrams were dropped and the
    # retry/suspicion machinery worked through them.
    assert counters["dropped"] > 0
    assert counters["retries"] > 0
    assert counters["push_failures"] > 0  # crashed peers exhaust retries

    # Every surviving node terminated the instance...
    assert summary.reached == N_NODES - CRASHES
    # ...and the surviving estimate converged: max CDF error at the
    # interpolation points below 0.05 despite loss and churn.
    assert summary.errors_points.maximum < 0.05, (
        f"max CDF error {summary.errors_points.maximum:.4f} under "
        f"5% loss + {CRASHES} crashes"
    )
    # The whole-range error (interpolation gaps included) stays well
    # away from the reached-nobody degenerate value of 1.0.
    assert summary.errors_entire.maximum < 0.2
