"""The read-only HTTP status surface: routes, errors, thread wrapper."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import Adam2Config
from repro.errors import NetworkError
from repro.net.httpstatus import StatusServer, StatusServerThread
from repro.obs import MemorySink, ObserverHub
from repro.service import build_service
from repro.workloads.synthetic import uniform_workload

CONFIG = Adam2Config(points=24, rounds_per_instance=25)


def run(coro):
    return asyncio.run(coro)


def make_handle(**overrides):
    kwargs = dict(backend="fast", n_nodes=400, seed=5)
    kwargs.update(overrides)
    return build_service(CONFIG, uniform_workload(0, 1000), **kwargs)


async def fetch(host, port, target="/status", *, raw_line=None):
    """One GET over a raw stream; returns (status_code, decoded body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        line = raw_line if raw_line is not None else f"GET {target} HTTP/1.1\r\n"
        writer.write(line.encode() + b"Host: test\r\nAccept: */*\r\n\r\n")
        await writer.drain()
        response = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = response.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0]
    assert b"application/json" in head
    assert b"Connection: close" in head
    return int(status_line.split()[1]), json.loads(body)


@pytest.fixture(scope="module")
def handle():
    built = make_handle()
    built.refresh()  # two published versions to exercise /history
    return built


class TestRoutes:
    def test_status_route_matches_handle(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(server.host, server.port, "/status")

        status, body = run(scenario())
        assert status == 200
        assert body["backend"] == "fast"
        assert body["latest"]["version"] == handle.store.latest().version
        assert body["persistence"] is None

    def test_estimate_route_serves_the_polyline(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(server.host, server.port, "/estimate")

        status, body = run(scenario())
        assert status == 200
        snapshot = handle.store.latest()
        xs, ys = snapshot.estimate.polyline()
        assert body["meta"]["version"] == snapshot.version
        assert body["polyline"]["xs"] == xs.tolist()
        assert body["polyline"]["ys"] == ys.tolist()

    def test_estimate_route_serves_a_pinned_past_version(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(
                    server.host, server.port, "/estimate?version=1"
                )

        status, body = run(scenario())
        assert status == 200
        assert body["meta"]["version"] == 1

    def test_history_route_lists_every_version(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(server.host, server.port, "/history")

        status, body = run(scenario())
        assert status == 200
        assert [entry["version"] for entry in body] == [1, 2]

    def test_metrics_route_mirrors_the_hub(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(server.host, server.port, "/metrics")

        status, body = run(scenario())
        assert status == 200
        assert body["counters"]["service_cycles_total"] >= 2


class TestErrors:
    def test_unknown_path_is_404_listing_routes(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(server.host, server.port, "/nope")

        status, body = run(scenario())
        assert status == 404
        assert body["routes"] == ["/status", "/estimate", "/history", "/metrics"]

    def test_post_is_405(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(
                    server.host, server.port,
                    raw_line="POST /status HTTP/1.1\r\n",
                )

        status, body = run(scenario())
        assert status == 405
        assert "GET only" in body["error"]

    def test_malformed_request_line_is_400(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(
                    server.host, server.port, raw_line="garbage\r\n"
                )

        status, body = run(scenario())
        assert status == 400

    def test_non_integer_version_is_400(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(
                    server.host, server.port, "/estimate?version=latest"
                )

        status, body = run(scenario())
        assert status == 400
        assert "integer" in body["error"]

    def test_missing_version_is_503(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                return await fetch(
                    server.host, server.port, "/estimate?version=999"
                )

        status, body = run(scenario())
        assert status == 503
        assert body["error"] == "unavailable"
        assert "999" in body["message"]

    def test_cold_store_is_503_unavailable(self):
        cold = make_handle(warm_cycles=0)

        async def scenario():
            async with StatusServer(cold) as server:
                return await fetch(server.host, server.port, "/estimate")

        status, body = run(scenario())
        assert status == 503
        assert body["error"] == "unavailable"

    def test_request_counters(self):
        hub = ObserverHub([MemorySink()])
        counted = make_handle(hub=hub)

        async def scenario():
            async with StatusServer(counted) as server:
                await fetch(server.host, server.port, "/status")
                await fetch(server.host, server.port, "/nope")

        run(scenario())
        assert hub.metrics.counter("http_requests_total").snapshot() == 2
        assert hub.metrics.counter("http_errors_total").snapshot() == 1


class TestLifecycle:
    def test_double_start_is_refused(self, handle):
        async def scenario():
            async with StatusServer(handle) as server:
                with pytest.raises(NetworkError, match="already started"):
                    await server.start()

        run(scenario())

    def test_port_is_released_on_stop(self, handle):
        async def scenario():
            server = StatusServer(handle)
            await server.start()
            bound = server.port
            await server.stop()
            assert server.port is None
            return bound

        assert run(scenario()) > 0


class TestThreadWrapper:
    def test_serves_from_a_foreign_thread(self, handle):
        with StatusServerThread(handle) as thread:
            status, body = run(fetch(thread.host, thread.port, "/status"))
        assert status == 200
        assert body["backend"] == "fast"
        assert thread.port is None  # stopped on exit

    def test_double_start_is_refused(self, handle):
        with StatusServerThread(handle) as thread:
            with pytest.raises(NetworkError, match="already started"):
                thread.start()

    def test_stop_without_start_is_a_noop(self, handle):
        StatusServerThread(handle).stop()


class TestDurableStatus:
    def test_status_reports_persistence_when_durable(self, tmp_path):
        durable = make_handle(store_dir=tmp_path, warm_cycles=1)
        try:
            async def scenario():
                async with StatusServer(durable) as server:
                    return await fetch(server.host, server.port, "/status")

            status, body = run(scenario())
        finally:
            durable.close()
        assert status == 200
        persistence = body["persistence"]
        assert persistence["restarts"] == 1
        assert persistence["segments"] >= 1
        assert persistence["fsync"] == "rotate"
