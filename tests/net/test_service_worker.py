"""The multi-worker serving pool: both modes, the snapshot feed, parity."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import Adam2Config
from repro.errors import NetworkError
from repro.net.service_endpoint import ServiceClient, measure_endpoint_qps
from repro.net.service_worker import ServiceWorkerPool, reuseport_available
from repro.service import build_service
from repro.service.protocol import QueryRequest
from repro.workloads.synthetic import uniform_workload

CONFIG = Adam2Config(points=24, rounds_per_instance=25)

#: both modes must speak identical protocol; reuseport only where the
#: kernel supports it
MODES = ["threads"] + (["reuseport"] if reuseport_available() else [])


def run(coro):
    return asyncio.run(coro)


def make_handle(**overrides):
    kwargs = dict(backend="fast", n_nodes=400, seed=5)
    kwargs.update(overrides)
    return build_service(CONFIG, uniform_workload(0, 1000), **kwargs)


@pytest.fixture(scope="module")
def handle():
    return make_handle()


class TestPoolLifecycle:
    def test_rejects_bad_arguments(self, handle):
        with pytest.raises(NetworkError):
            ServiceWorkerPool(handle.store, workers=0)
        with pytest.raises(NetworkError):
            ServiceWorkerPool(handle.store, mode="carrier-pigeon")

    @pytest.mark.parametrize("mode", MODES)
    def test_start_stop_is_clean_and_restartable(self, handle, mode):
        pool = ServiceWorkerPool(handle.store, workers=2, mode=mode)
        with pool:
            assert pool.mode == mode and pool.port is not None
        assert pool.mode is None and pool.port is None
        with pool:  # a stopped pool can start again
            assert pool.mode == mode

    def test_double_start_fails_loudly(self, handle):
        pool = ServiceWorkerPool(handle.store, workers=1, mode="threads")
        with pool:
            with pytest.raises(NetworkError):
                pool.start()


class TestServingParity:
    """Both pool modes answer byte-identically to the single endpoint."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("frame", ["json", "binary"])
    def test_queries_match_in_process(self, handle, mode, frame):
        async def scenario(port):
            async with ServiceClient("127.0.0.1", port, frame=frame) as client:
                return (
                    await client.cdf(500.0),
                    await client.quantile(0.5),
                    await client.fraction_between(100.0, 900.0),
                    await client.network_size(),
                )

        with ServiceWorkerPool(handle.store, workers=2, mode=mode) as pool:
            cdf, quantile, fraction, size = run(scenario(pool.port))
        assert cdf == pytest.approx(handle.cdf(500.0))
        assert quantile == pytest.approx(handle.quantile(0.5))
        assert fraction == pytest.approx(handle.fraction_between(100.0, 900.0))
        assert size == pytest.approx(handle.network_size())

    @pytest.mark.parametrize("mode", MODES)
    def test_batch_partial_failure_over_the_pool(self, handle, mode):
        async def scenario(port):
            async with ServiceClient("127.0.0.1", port) as client:
                return await client.request({"op": "batch", "ops": [
                    {"op": "cdf", "x": 500.0},
                    {"op": "cdf", "x": True},
                    {"op": "size"},
                ]})

        with ServiceWorkerPool(handle.store, workers=2, mode=mode) as pool:
            response = run(scenario(pool.port))
        results = response["results"]
        assert [r["ok"] for r in results] == [True, False, True]
        assert results[1]["error"] == "bad_request"

    @pytest.mark.parametrize("mode", MODES)
    def test_status_names_the_serving_worker(self, handle, mode):
        async def scenario(port):
            async with ServiceClient("127.0.0.1", port) as client:
                return await client.status()

        with ServiceWorkerPool(handle.store, workers=2, mode=mode) as pool:
            status = run(scenario(pool.port))
        assert status["serving_mode"] == mode
        assert status["backend"] == "fast"
        assert isinstance(status["worker"], int)


class TestSnapshotFeed:
    @pytest.mark.parametrize("mode", MODES)
    def test_new_versions_reach_the_workers(self, mode):
        handle = make_handle()
        baseline = handle.store.versions()

        async def versions(port, want):
            async with ServiceClient("127.0.0.1", port) as client:
                # The feed is asynchronous in reuseport mode: poll until
                # the published version lands in a worker replica.
                for _ in range(100):
                    status = await client.status()
                    if want in status["versions"]:
                        return status["versions"]
                    await asyncio.sleep(0.05)
                return status["versions"]

        with ServiceWorkerPool(handle.store, workers=2, mode=mode) as pool:
            snapshot = handle.refresh()
            seen = run(versions(pool.port, snapshot.version))
        assert snapshot.version in seen
        assert set(baseline) <= set(seen)

    @pytest.mark.parametrize("mode", MODES)
    def test_workers_adopt_recovered_snapshots_before_ready(self, tmp_path, mode):
        # Restart path: recovery happens in build_service *before* the
        # pool starts, so worker replicas see the recovered versions in
        # the initial store — the first query after start serves them
        # with no warm-up publish in the new process.
        first = make_handle(store_dir=tmp_path)
        first.refresh()
        want = first.store.latest().version
        expected = first.cdf(500.0)
        first.close()

        restarted = make_handle(store_dir=tmp_path, warm_cycles=0)
        try:
            assert restarted.scheduler.tick == 0  # nothing published here

            async def scenario(port):
                async with ServiceClient("127.0.0.1", port) as client:
                    return await client.status(), await client.cdf(500.0)

            with ServiceWorkerPool(
                restarted.store, workers=2, mode=mode
            ) as pool:
                status, cdf = run(scenario(pool.port))
        finally:
            restarted.close()
        assert want in status["versions"]
        assert cdf == expected  # bit-identical polyline, not approx

    def test_stopping_unsubscribes_the_feed(self, handle):
        pool = ServiceWorkerPool(handle.store, workers=1, mode="threads")
        with pool:
            pass
        # Publishing after stop must not enqueue into dead feeds.
        handle.refresh()


class TestPooledMeasurement:
    def test_measure_endpoint_qps_uses_the_pool(self, handle):
        queries = [("cdf", (float(x % 37),)) for x in range(120)]
        stats = measure_endpoint_qps(
            handle, queries, clients=3, workers=2, frame="binary", batch_size=8
        )
        assert stats["ops"] == 120
        assert stats["errors"] == 0
        assert stats["server"] in ("reuseport", "threads")
        assert stats["qps"] > 0
        # 120 ops in batches of 8 over 3 clients: 5 requests per client
        latencies = stats["latencies"]
        assert isinstance(latencies, list) and len(latencies) == 15

    def test_pipeline_through_the_pool(self, handle):
        async def scenario(port):
            async with ServiceClient("127.0.0.1", port, frame="binary") as client:
                requests = [
                    QueryRequest.cdf(float(i), request_id=i) for i in range(10)
                ]
                responses = await client.pipeline(requests)
                return [r.request_id for r in responses]

        with ServiceWorkerPool(handle.store, workers=2) as pool:
            ids = run(scenario(pool.port))
        assert ids == list(range(10))
