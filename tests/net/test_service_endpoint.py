"""The TCP query frontend: protocol, error classes, concurrency."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import Adam2Config
from repro.obs import JsonlSink, MemorySink, ObserverHub
from repro.service import build_service
from repro.net.service_endpoint import (
    ServiceClient,
    ServiceEndpoint,
    measure_endpoint_qps,
)
from repro.service.protocol import BatchRequest, QueryRequest
from repro.workloads.synthetic import uniform_workload

CONFIG = Adam2Config(points=24, rounds_per_instance=25)


def run(coro):
    return asyncio.run(coro)


def make_handle(hub=None, **overrides):
    kwargs = dict(backend="fast", n_nodes=400, seed=5)
    kwargs.update(overrides)
    if hub is not None:
        kwargs["hub"] = hub
    return build_service(CONFIG, uniform_workload(0, 1000), **kwargs)


@pytest.fixture(scope="module")
def handle():
    return make_handle()


class TestQueries:
    def test_round_trip_matches_in_process(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return (
                        await client.cdf(500.0),
                        await client.quantile(0.5),
                        await client.fraction_between(100.0, 900.0),
                        await client.network_size(),
                    )

        cdf, quantile, fraction, size = run(scenario())
        assert cdf == pytest.approx(handle.cdf(500.0))
        assert quantile == pytest.approx(handle.quantile(0.5))
        assert fraction == pytest.approx(handle.fraction_between(100.0, 900.0))
        assert size == pytest.approx(handle.network_size())

    def test_status_pin_and_history(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    status = await client.status()
                    pinned = await client.request({"op": "pin", "version": 1})
                    history = await client.request({"op": "history"})
                    unpinned = await client.request({"op": "unpin", "version": 1})
                    return status, pinned, history, unpinned

        status, pinned, history, unpinned = run(scenario())
        assert status["backend"] == "fast" and 1 in status["versions"]
        assert pinned == {"ok": True, "pinned": 1, "id": pinned["id"]}
        assert [e["version"] for e in history["history"]] == status["versions"]
        assert unpinned["ok"]

    def test_request_ids_echoed(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return await client.request({"op": "size", "id": 77})

        assert run(scenario())["id"] == 77


class TestErrors:
    def assert_error(self, handle, payload, code):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return await client.request(payload)

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"] == code
        assert response["message"]

    def test_unknown_op(self, handle):
        self.assert_error(handle, {"op": "nope"}, "bad_request")

    def test_missing_field(self, handle):
        self.assert_error(handle, {"op": "cdf"}, "bad_request")

    def test_non_numeric_field(self, handle):
        self.assert_error(handle, {"op": "cdf", "x": "wide"}, "bad_request")

    def test_boolean_field_is_not_a_number(self, handle):
        # Regression: bool subclasses int, so a naive isinstance check
        # would serve {"op": "cdf", "x": true} as cdf(1.0).
        self.assert_error(handle, {"op": "cdf", "x": True}, "bad_request")
        self.assert_error(
            handle, {"op": "fraction", "a": False, "b": 2.0}, "bad_request"
        )
        self.assert_error(
            handle, {"op": "cdf", "x": 1.0, "version": True}, "bad_request"
        )

    def test_bad_quantile_level(self, handle):
        self.assert_error(handle, {"op": "quantile", "q": 3.0}, "bad_request")

    def test_evicted_version_is_unavailable(self, handle):
        self.assert_error(
            handle, {"op": "cdf", "x": 1.0, "version": 999}, "unavailable"
        )

    def test_cold_service_is_unavailable(self):
        cold = make_handle(warm_cycles=0)
        self.assert_error(cold, {"op": "cdf", "x": 1.0}, "unavailable")

    def test_invalid_json_line(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", endpoint.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return json.loads(line)

        response = run(scenario())
        assert response["ok"] is False and response["error"] == "bad_request"

    def test_non_object_request(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", endpoint.port
                )
                writer.write(b"[1, 2, 3]\n")
                await writer.drain()
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return json.loads(line)

        response = run(scenario())
        assert response["ok"] is False and response["error"] == "bad_request"


class TestObservability:
    def test_every_request_line_is_traced(self, tmp_path):
        trace = tmp_path / "queries.jsonl"
        sink = JsonlSink(trace)
        hub = ObserverHub([sink])
        handle = make_handle(hub=hub)

        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    await client.cdf(500.0)
                    await client.cdf(500.0)  # cache hit
                    await client.request({"op": "status"})
                    await client.request({"op": "nope"})
                    # parse failure of an engine op: never reaches the
                    # engine, so the endpoint must trace it itself
                    await client.request({"op": "cdf", "x": "wide"})

        run(scenario())
        sink.close()
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        queries = [e for e in events if e["type"] == "query"]
        assert [q["op"] for q in queries] == [
            "cdf", "cdf", "status", "nope", "cdf"
        ]
        assert [q["cache_hit"] for q in queries] == [
            False, True, False, False, False
        ]
        for failed in queries[-2:]:
            assert failed["ok"] is False
            assert failed["error"] == "bad_request"
        assert all(q["latency_s"] >= 0.0 for q in queries)

    def test_engine_errors_counted_once(self):
        sink = MemorySink()
        handle = make_handle(hub=ObserverHub([sink]))

        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    await client.request({"op": "quantile", "q": 9.0})

        run(scenario())
        failures = [e for e in sink.queries if not e.ok]
        assert len(failures) == 1  # the engine's event; no endpoint double


class TestBatch:
    def test_batch_partial_failure_over_the_wire(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return await client.request({"op": "batch", "ops": [
                        {"op": "cdf", "x": 500.0},
                        {"op": "nope"},
                        {"op": "quantile", "q": 9.0},
                        {"op": "size"},
                    ], "id": 5})

        response = run(scenario())
        assert response["ok"] is True and response["id"] == 5
        oks = [r["ok"] for r in response["results"]]
        assert oks == [True, False, False, True]
        assert response["results"][1]["error"] == "bad_request"
        assert response["results"][0]["value"] == pytest.approx(
            handle.cdf(500.0)
        )

    def test_typed_batch_surface(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    batch = await client.batch([
                        QueryRequest.cdf(500.0),
                        QueryRequest.network_size(),
                    ])
                    return [r.result() for r in batch.results]

        cdf, size = run(scenario())
        assert cdf == pytest.approx(handle.cdf(500.0))
        assert size == pytest.approx(handle.network_size())

    def test_empty_batch_is_bad_request(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return await client.request({"op": "batch", "ops": []})

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"] == "bad_request"


class TestBinaryFrames:
    def test_negotiated_binary_round_trip(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient(
                    "127.0.0.1", endpoint.port, frame="binary"
                ) as client:
                    assert client.frame == "binary"
                    values = (
                        await client.cdf(500.0),
                        await client.quantile(0.5),
                        await client.network_size(),
                    )
                    status = await client.status()
                    return values, status

        (cdf, quantile, size), status = run(scenario())
        assert cdf == pytest.approx(handle.cdf(500.0))
        assert quantile == pytest.approx(handle.quantile(0.5))
        assert size == pytest.approx(handle.network_size())
        assert status["backend"] == "fast"

    def test_binary_batch_and_errors(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient(
                    "127.0.0.1", endpoint.port, frame="binary"
                ) as client:
                    batch = await client.batch([
                        QueryRequest.cdf(500.0),
                        QueryRequest.quantile(9.0),
                    ])
                    return [(r.ok, r.error) for r in batch.results]

        results = run(scenario())
        assert results[0] == (True, None)
        assert results[1] == (False, "bad_request")

    def test_unknown_frame_name_is_rejected(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return await client.request(
                        {"op": "frame", "frame": "carrier-pigeon"}
                    )

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"] == "bad_request"


class TestPipelining:
    @pytest.mark.parametrize("frame", ["json", "binary"])
    def test_pipelined_requests_answer_in_order(self, handle, frame):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient(
                    "127.0.0.1", endpoint.port, frame=frame
                ) as client:
                    requests = [
                        QueryRequest.cdf(float(i * 50), request_id=i)
                        for i in range(12)
                    ]
                    responses = await client.pipeline(requests)
                    return [(r.request_id, r.value) for r in responses]

        results = run(scenario())
        assert [request_id for request_id, _ in results] == list(range(12))
        for i, (_, value) in enumerate(results):
            assert value == pytest.approx(handle.cdf(float(i * 50)))

    def test_pipeline_mixes_singles_and_batches(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    responses = await client.pipeline([
                        QueryRequest.cdf(500.0, request_id=1),
                        BatchRequest((
                            QueryRequest.network_size(),
                            QueryRequest.cdf(100.0),
                        ), request_id=2),
                        QueryRequest.network_size(request_id=3),
                    ])
                    return responses

        single, batch, last = run(scenario())
        assert single.request_id == 1 and single.ok
        assert [r.ok for r in batch.results] == [True, True]
        assert last.request_id == 3 and last.ok


class TestConcurrency:
    def test_concurrent_clients_all_answered(self, handle):
        queries = [("cdf", (float(x % 97),)) for x in range(120)]
        stats = measure_endpoint_qps(handle, queries, clients=5)
        latencies = stats["latencies"]
        assert isinstance(latencies, list) and len(latencies) == 120
        assert stats["errors"] == 0
        assert all(latency > 0 for latency in latencies)

    def test_concurrency_does_not_invert_throughput(self, handle):
        """Closed-loop clients with think time: aggregate wall-clock
        qps at 4 clients must comfortably exceed qps at 1 client.  The
        old benchmark summed per-request latencies — multiply-counting
        time spent queued — and reported the opposite (a concurrency
        "inversion" the serving path never had)."""
        queries = [("cdf", (float(x % 97),)) for x in range(1600)]
        stats_1 = measure_endpoint_qps(
            handle, queries, clients=1, workers=2,
            frame="binary", batch_size=8, think_s=0.003,
        )
        stats_4 = measure_endpoint_qps(
            handle, queries, clients=4, workers=2,
            frame="binary", batch_size=8, think_s=0.003,
        )
        assert stats_1["errors"] == 0 and stats_4["errors"] == 0
        # Each client is think-time-bound (~batch/think qps), so four
        # clients should land near 4x one client; 2x is the flake-proof
        # floor.
        assert stats_4["qps"] >= 2.0 * stats_1["qps"], (
            stats_1["qps"], stats_4["qps"],
        )

    def test_sequential_requests_answered_in_order(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return [
                        (await client.request({"op": "size", "id": i}))["id"]
                        for i in range(10)
                    ]

        assert run(scenario()) == list(range(10))
