"""The TCP query frontend: protocol, error classes, concurrency."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import Adam2Config
from repro.obs import JsonlSink, MemorySink, ObserverHub
from repro.service import build_service
from repro.net.service_endpoint import (
    ServiceClient,
    ServiceEndpoint,
    measure_endpoint_qps,
)
from repro.workloads.synthetic import uniform_workload

CONFIG = Adam2Config(points=24, rounds_per_instance=25)


def run(coro):
    return asyncio.run(coro)


def make_handle(hub=None, **overrides):
    kwargs = dict(backend="fast", n_nodes=400, seed=5)
    kwargs.update(overrides)
    if hub is not None:
        kwargs["hub"] = hub
    return build_service(CONFIG, uniform_workload(0, 1000), **kwargs)


@pytest.fixture(scope="module")
def handle():
    return make_handle()


class TestQueries:
    def test_round_trip_matches_in_process(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return (
                        await client.cdf(500.0),
                        await client.quantile(0.5),
                        await client.fraction_between(100.0, 900.0),
                        await client.network_size(),
                    )

        cdf, quantile, fraction, size = run(scenario())
        assert cdf == pytest.approx(handle.cdf(500.0))
        assert quantile == pytest.approx(handle.quantile(0.5))
        assert fraction == pytest.approx(handle.fraction_between(100.0, 900.0))
        assert size == pytest.approx(handle.network_size())

    def test_status_pin_and_history(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    status = await client.status()
                    pinned = await client.request({"op": "pin", "version": 1})
                    history = await client.request({"op": "history"})
                    unpinned = await client.request({"op": "unpin", "version": 1})
                    return status, pinned, history, unpinned

        status, pinned, history, unpinned = run(scenario())
        assert status["backend"] == "fast" and 1 in status["versions"]
        assert pinned == {"ok": True, "pinned": 1, "id": pinned["id"]}
        assert [e["version"] for e in history["history"]] == status["versions"]
        assert unpinned["ok"]

    def test_request_ids_echoed(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return await client.request({"op": "size", "id": 77})

        assert run(scenario())["id"] == 77


class TestErrors:
    def assert_error(self, handle, payload, code):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return await client.request(payload)

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"] == code
        assert response["message"]

    def test_unknown_op(self, handle):
        self.assert_error(handle, {"op": "nope"}, "bad_request")

    def test_missing_field(self, handle):
        self.assert_error(handle, {"op": "cdf"}, "bad_request")

    def test_non_numeric_field(self, handle):
        self.assert_error(handle, {"op": "cdf", "x": "wide"}, "bad_request")

    def test_bad_quantile_level(self, handle):
        self.assert_error(handle, {"op": "quantile", "q": 3.0}, "bad_request")

    def test_evicted_version_is_unavailable(self, handle):
        self.assert_error(
            handle, {"op": "cdf", "x": 1.0, "version": 999}, "unavailable"
        )

    def test_cold_service_is_unavailable(self):
        cold = make_handle(warm_cycles=0)
        self.assert_error(cold, {"op": "cdf", "x": 1.0}, "unavailable")

    def test_invalid_json_line(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", endpoint.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return json.loads(line)

        response = run(scenario())
        assert response["ok"] is False and response["error"] == "bad_request"

    def test_non_object_request(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", endpoint.port
                )
                writer.write(b"[1, 2, 3]\n")
                await writer.drain()
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return json.loads(line)

        response = run(scenario())
        assert response["ok"] is False and response["error"] == "bad_request"


class TestObservability:
    def test_every_request_line_is_traced(self, tmp_path):
        trace = tmp_path / "queries.jsonl"
        sink = JsonlSink(trace)
        hub = ObserverHub([sink])
        handle = make_handle(hub=hub)

        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    await client.cdf(500.0)
                    await client.cdf(500.0)  # cache hit
                    await client.request({"op": "status"})
                    await client.request({"op": "nope"})
                    # parse failure of an engine op: never reaches the
                    # engine, so the endpoint must trace it itself
                    await client.request({"op": "cdf", "x": "wide"})

        run(scenario())
        sink.close()
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        queries = [e for e in events if e["type"] == "query"]
        assert [q["op"] for q in queries] == [
            "cdf", "cdf", "status", "nope", "cdf"
        ]
        assert [q["cache_hit"] for q in queries] == [
            False, True, False, False, False
        ]
        for failed in queries[-2:]:
            assert failed["ok"] is False
            assert failed["error"] == "bad_request"
        assert all(q["latency_s"] >= 0.0 for q in queries)

    def test_engine_errors_counted_once(self):
        sink = MemorySink()
        handle = make_handle(hub=ObserverHub([sink]))

        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    await client.request({"op": "quantile", "q": 9.0})

        run(scenario())
        failures = [e for e in sink.queries if not e.ok]
        assert len(failures) == 1  # the engine's event; no endpoint double


class TestConcurrency:
    def test_concurrent_clients_all_answered(self, handle):
        queries = [("cdf", (float(x % 97),)) for x in range(120)]
        stats = measure_endpoint_qps(handle, queries, clients=5)
        latencies = stats["latencies"]
        assert isinstance(latencies, list) and len(latencies) == 120
        assert stats["errors"] == 0
        assert all(latency > 0 for latency in latencies)

    def test_sequential_requests_answered_in_order(self, handle):
        async def scenario():
            async with ServiceEndpoint(handle, port=0) as endpoint:
                async with ServiceClient("127.0.0.1", endpoint.port) as client:
                    return [
                        (await client.request({"op": "size", "id": i}))["id"]
                        for i in range(10)
                    ]

        assert run(scenario()) == list(range(10))
