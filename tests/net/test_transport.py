"""UDP transport: request/response, retries, dedup, fault injection."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import NetworkError, TransportTimeout
from repro.net.codec import Message, WireCodec
from repro.net.faults import FaultInjector
from repro.net.transport import UdpTransport
from repro.rngs import make_rng


class EchoHandler:
    """Replies to every sample request with fixed values; counts calls."""

    def __init__(self, values):
        self.values = np.asarray(values, dtype=float)
        self.calls = 0

    def handle_request(self, message: Message, codec: WireCodec) -> bytes | None:
        self.calls += 1
        return codec.encode_sample_response(99, message.msg_id, self.values)


class SilentHandler:
    """Never replies (a peer that declines everything)."""

    def __init__(self):
        self.calls = 0

    def handle_request(self, message: Message, codec: WireCodec) -> bytes | None:
        self.calls += 1
        return None


class DropFirst:
    """Deterministic fault: drop the first ``count`` outgoing datagrams."""

    active = True

    def __init__(self, count: int):
        self.remaining = count
        self.dropped = 0

    def send(self, send_fn, datagram: bytes, address) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            self.dropped += 1
            return
        send_fn(datagram, address)


def run(coro):
    return asyncio.run(coro)


async def open_pair(codec, *, handler=None, fault=None, **options):
    a = UdpTransport(codec, make_rng(1), **options)
    b = UdpTransport(codec, make_rng(2), handler=handler, fault=fault, **options)
    await a.open()
    await b.open()
    return a, b


class TestRequestResponse:
    def test_round_trip(self):
        async def scenario():
            codec = WireCodec()
            handler = EchoHandler([1.0, 2.0, 3.0])
            a, b = await open_pair(codec, handler=handler)
            try:
                msg_id = a.next_msg_id()
                reply = await a.request(
                    codec.encode_sample_request(0, msg_id), b.address, msg_id
                )
                np.testing.assert_array_equal(reply.values, [1.0, 2.0, 3.0])
                assert handler.calls == 1
                assert a.retries == 0 and a.timeouts == 0
            finally:
                a.close()
                b.close()

        run(scenario())

    def test_timeout_after_retry_budget(self):
        async def scenario():
            codec = WireCodec()
            a, b = await open_pair(
                codec, handler=SilentHandler(),
                request_timeout=0.02, max_retries=2, backoff=1.2,
            )
            try:
                msg_id = a.next_msg_id()
                with pytest.raises(TransportTimeout, match="3 attempts"):
                    await a.request(
                        codec.encode_sample_request(0, msg_id), b.address, msg_id
                    )
                assert a.retries == 2
                assert a.timeouts == 1
            finally:
                a.close()
                b.close()

        run(scenario())

    def test_duplicate_msg_id_rejected(self):
        async def scenario():
            codec = WireCodec()
            a, b = await open_pair(
                codec, handler=SilentHandler(), request_timeout=0.05, max_retries=0
            )
            try:
                msg_id = a.next_msg_id()
                datagram = codec.encode_sample_request(0, msg_id)
                first = asyncio.ensure_future(a.request(datagram, b.address, msg_id))
                await asyncio.sleep(0.01)
                with pytest.raises(NetworkError, match="pending"):
                    await a.request(datagram, b.address, msg_id)
                with pytest.raises(TransportTimeout):
                    await first
            finally:
                a.close()
                b.close()

        run(scenario())

    def test_close_fails_pending_requests(self):
        async def scenario():
            codec = WireCodec()
            a, b = await open_pair(
                codec, handler=SilentHandler(), request_timeout=5.0
            )
            msg_id = a.next_msg_id()
            pending = asyncio.ensure_future(
                a.request(codec.encode_sample_request(0, msg_id), b.address, msg_id)
            )
            await asyncio.sleep(0.01)
            a.close()
            b.close()
            with pytest.raises(TransportTimeout, match="closed"):
                await pending

        run(scenario())


class TestRetryAndDedup:
    def test_lost_request_is_retried_to_success(self):
        async def scenario():
            codec = WireCodec()
            handler = EchoHandler([7.0])
            a = UdpTransport(
                codec, make_rng(1), request_timeout=0.03, fault=DropFirst(1)
            )
            b = UdpTransport(codec, make_rng(2), handler=handler)
            await a.open()
            await b.open()
            try:
                msg_id = a.next_msg_id()
                reply = await a.request(
                    codec.encode_sample_request(0, msg_id), b.address, msg_id
                )
                np.testing.assert_array_equal(reply.values, [7.0])
                assert a.retries >= 1
                assert handler.calls == 1  # the drop ate the request, not the reply
            finally:
                a.close()
                b.close()

        run(scenario())

    def test_lost_reply_answered_from_cache_without_rerunning_handler(self):
        """At-most-once: a retried request must not re-invoke the handler."""

        async def scenario():
            codec = WireCodec()
            handler = EchoHandler([4.0])
            a = UdpTransport(codec, make_rng(1), request_timeout=0.03)
            b = UdpTransport(
                codec, make_rng(2), handler=handler, fault=DropFirst(1)
            )
            await a.open()
            await b.open()
            try:
                msg_id = a.next_msg_id()
                reply = await a.request(
                    codec.encode_sample_request(0, msg_id), b.address, msg_id
                )
                np.testing.assert_array_equal(reply.values, [4.0])
                assert handler.calls == 1  # second arrival hit the reply cache
                assert b.duplicates_suppressed == 1
            finally:
                a.close()
                b.close()

        run(scenario())

    def test_none_reply_is_also_deduplicated(self):
        """A handler that declines is still not re-invoked on retries."""

        async def scenario():
            codec = WireCodec()
            handler = SilentHandler()
            a = UdpTransport(
                codec, make_rng(1), request_timeout=0.02, max_retries=2
            )
            b = UdpTransport(codec, make_rng(2), handler=handler)
            await a.open()
            await b.open()
            try:
                msg_id = a.next_msg_id()
                with pytest.raises(TransportTimeout):
                    await a.request(
                        codec.encode_sample_request(0, msg_id), b.address, msg_id
                    )
                assert handler.calls == 1
                assert b.duplicates_suppressed == 2
            finally:
                a.close()
                b.close()

        run(scenario())

    def test_malformed_datagram_counted_not_fatal(self):
        async def scenario():
            codec = WireCodec()
            handler = EchoHandler([1.0])
            a, b = await open_pair(codec, handler=handler)
            try:
                a.send(b"not an adam2 datagram", b.address)
                await asyncio.sleep(0.02)
                assert b.decode_errors == 1
                msg_id = a.next_msg_id()  # endpoint still works afterwards
                reply = await a.request(
                    codec.encode_sample_request(0, msg_id), b.address, msg_id
                )
                np.testing.assert_array_equal(reply.values, [1.0])
            finally:
                a.close()
                b.close()

        run(scenario())


class TestFaultInjector:
    def test_drop_rate_drops_datagrams(self):
        sent = []
        fault = FaultInjector(make_rng(3), drop_rate=0.5)
        for i in range(200):
            fault.send(lambda d, a: sent.append(d), b"x%d" % i, ("h", 1))
        assert fault.dropped > 50
        assert len(sent) + fault.dropped == 200

    def test_reorder_swaps_adjacent_datagrams(self):
        sent = []
        fault = FaultInjector(make_rng(6), reorder_rate=0.9)
        fault.send(lambda d, a: sent.append(d), b"first", ("h", 1))
        fault.send(lambda d, a: sent.append(d), b"second", ("h", 1))
        assert sent == [b"second", b"first"]
        assert fault.reordered == 1

    def test_delay_defers_via_event_loop(self):
        async def scenario():
            sent = []
            fault = FaultInjector(make_rng(5), delay_range=(0.01, 0.02))
            fault.send(lambda d, a: sent.append(d), b"payload", ("h", 1))
            assert sent == []
            await asyncio.sleep(0.05)
            assert sent == [b"payload"]

        run(scenario())

    def test_invalid_rates_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FaultInjector(make_rng(0), drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(make_rng(0), delay_range=(0.2, 0.1))
