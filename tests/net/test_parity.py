"""Simulator/network parity: the net backend estimates what the async
simulator estimates.

Both backends spawn their population from the same seed in the same
order, so they aggregate the *same* 32 attribute values; on a loss-free
localhost cluster the real-network run must land within 2x of the
discrete-event simulator's final CDF max-error.  This is the test that
keeps the simulators honest as the network runtime's deterministic twin.
"""

from __future__ import annotations

from repro.api import run
from repro.core.config import Adam2Config
from repro.workloads.synthetic import uniform_workload

N_NODES = 32
CONFIG = Adam2Config(points=10, rounds_per_instance=30)
WORKLOAD = uniform_workload(0, 1000)
SEED = 17


def test_net_matches_async_within_2x():
    async_result = run(
        CONFIG, WORKLOAD, backend="async",
        n_nodes=N_NODES, instances=1, seed=SEED,
    )
    net_result = run(
        CONFIG, WORKLOAD, backend="net",
        n_nodes=N_NODES, instances=1, seed=SEED,
        gossip_period=0.02,
        transport_options={"request_timeout": 0.1, "max_retries": 3},
    )

    async_summary = async_result.instances[0]
    net_summary = net_result.instances[0]

    # Same seed, same spawn order: both substrates sampled the same
    # population, so their ground truths are identical.
    assert net_summary.reached == N_NODES
    assert net_result.extras["net_counters"]["decode_errors"] == 0

    async_err = async_summary.errors_entire.maximum
    net_err = net_summary.errors_entire.maximum
    assert 0.0 < async_err < 1.0
    assert net_err <= 2.0 * async_err, (
        f"net backend err_max {net_err:.4f} exceeds twice the async "
        f"simulator's {async_err:.4f} on a loss-free cluster"
    )


def test_net_estimate_brackets_the_population():
    result = run(
        CONFIG, WORKLOAD, backend="net",
        n_nodes=N_NODES, instances=1, seed=SEED + 1,
        gossip_period=0.02,
        transport_options={"request_timeout": 0.1, "max_retries": 3},
    )
    estimate = result.estimate
    assert estimate is not None
    # Gossiped extrema are exact min/max over the population.
    assert 0.0 <= estimate.minimum <= estimate.maximum <= 1000.0
    assert estimate.system_size is not None
    assert 16 <= estimate.system_size <= 64  # weight-based size near N=32
