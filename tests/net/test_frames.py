"""The binary query-frame codec: round trips, validation, corruption."""

from __future__ import annotations

import pytest

from repro.errors import CodecError
from repro.net.frames import (
    FRAME_MAGIC,
    HEADER,
    KIND_BATCH_REQUEST,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameCodec,
    FRAME_VERSION,
)
from repro.rngs import make_rng
from repro.service.protocol import (
    BatchRequest,
    BatchResponse,
    QueryRequest,
    QueryResponse,
)


@pytest.fixture
def codec():
    return FrameCodec()


def round_trip_request(codec, request):
    frame = codec.encode_request(request)
    kind, length = codec.unpack_header(frame[: HEADER.size])
    payload = frame[HEADER.size :]
    assert len(payload) == length
    return codec.decode_request(kind, payload)


def round_trip_response(codec, response):
    frame = codec.encode_response(response)
    kind, length = codec.unpack_header(frame[: HEADER.size])
    payload = frame[HEADER.size :]
    assert len(payload) == length
    return codec.decode_response(kind, payload)


class TestRequestRoundTrip:
    @pytest.mark.parametrize("request_", [
        QueryRequest.cdf(1.5),
        QueryRequest.cdf(-3.25, version=7, request_id=42),
        QueryRequest.quantile(0.5, request_id=-1),
        QueryRequest.fraction_between(2048.0, float("inf")),
        QueryRequest.network_size(),
        QueryRequest.status(request_id=9),
        QueryRequest.history(),
        QueryRequest.pin(3),
        QueryRequest.unpin(3, request_id=8),
    ])
    def test_single(self, codec, request_):
        assert round_trip_request(codec, request_) == request_

    def test_batch(self, codec):
        batch = BatchRequest((
            QueryRequest.cdf(1.0),
            QueryRequest.fraction_between(0.0, 10.0),
            QueryRequest.network_size(),
        ), request_id=77)
        again = round_trip_request(codec, batch)
        assert isinstance(again, BatchRequest)
        assert again == batch

    def test_string_ids_cannot_ride_binary_frames(self, codec):
        with pytest.raises(CodecError):
            codec.encode_request(QueryRequest.cdf(1.0, request_id="abc"))

    def test_batch_members_carry_no_ids(self, codec):
        with pytest.raises(CodecError):
            codec.encode_request(BatchRequest(
                (QueryRequest.cdf(1.0, request_id=1),)
            ))


class TestResponseRoundTrip:
    @pytest.mark.parametrize("response", [
        QueryResponse.success(0.25),
        QueryResponse.success(0.25, version=3, request_id=5),
        QueryResponse.failure("bad_request", "nope"),
        QueryResponse.failure("unavailable", "gone", request_id=2),
        QueryResponse.failure("server_error", ""),
        QueryResponse.control({"status": {"versions": [1, 2]}}, request_id=1),
        QueryResponse.control({"history": [{"version": 1}]}),
        QueryResponse.control({}),
    ])
    def test_single(self, codec, response):
        again = round_trip_response(codec, response)
        assert again.ok == response.ok
        assert again.value == response.value
        assert again.version == response.version
        assert again.request_id == response.request_id
        assert again.error == response.error
        if response.payload is not None:
            assert again.payload == dict(response.payload)

    def test_empty_failure_message_still_reads_as_failed(self, codec):
        again = round_trip_response(codec, QueryResponse.failure("unavailable", ""))
        assert not again.ok and again.error == "unavailable"
        assert again.message  # normalised to a non-empty default

    def test_batch(self, codec):
        batch = BatchResponse((
            QueryResponse.success(1.0, version=2),
            QueryResponse.failure("bad_request", "boom"),
        ), request_id=6)
        again = round_trip_response(codec, batch)
        assert isinstance(again, BatchResponse)
        assert [r.ok for r in again.results] == [True, False]
        assert again.request_id == 6


class TestHeaderValidation:
    def test_bad_magic(self, codec):
        frame = bytearray(codec.encode_request(QueryRequest.network_size()))
        frame[0] = ord("X")
        with pytest.raises(CodecError):
            codec.unpack_header(bytes(frame[: HEADER.size]))

    def test_unknown_version(self, codec):
        header = HEADER.pack(FRAME_MAGIC, FRAME_VERSION + 1, KIND_REQUEST, 0)
        with pytest.raises(CodecError):
            codec.unpack_header(header)

    def test_unknown_kind(self, codec):
        header = HEADER.pack(FRAME_MAGIC, FRAME_VERSION, 200, 0)
        with pytest.raises(CodecError):
            codec.unpack_header(header)

    def test_length_budget_is_enforced(self):
        codec = FrameCodec(max_frame=64)
        header = HEADER.pack(FRAME_MAGIC, FRAME_VERSION, KIND_REQUEST, 65)
        with pytest.raises(CodecError):
            codec.unpack_header(header)

    def test_kind_mismatch_is_rejected(self, codec):
        frame = codec.encode_request(QueryRequest.network_size())
        payload = frame[HEADER.size :]
        with pytest.raises(CodecError):
            codec.decode_response(KIND_REQUEST, payload)
        with pytest.raises(CodecError):
            codec.decode_request(KIND_RESPONSE, payload)


class TestCorruption:
    def payloads(self):
        codec = FrameCodec()
        frames = [
            codec.encode_request(QueryRequest.cdf(1.5, version=2, request_id=9)),
            codec.encode_request(BatchRequest((
                QueryRequest.cdf(1.0), QueryRequest.network_size(),
            ), request_id=3)),
        ]
        return codec, frames

    def test_every_truncation_raises_codec_error(self):
        codec, frames = self.payloads()
        for frame in frames:
            kind, _ = codec.unpack_header(frame[: HEADER.size])
            payload = frame[HEADER.size :]
            for cut in range(len(payload)):
                with pytest.raises(CodecError):
                    codec.decode_request(kind, payload[:cut])

    def test_trailing_garbage_raises_codec_error(self):
        codec, frames = self.payloads()
        for frame in frames:
            kind, _ = codec.unpack_header(frame[: HEADER.size])
            with pytest.raises(CodecError):
                codec.decode_request(kind, frame[HEADER.size :] + b"\x00")

    def test_random_bitflips_never_crash_the_decoder(self):
        """Fuzz: a flipped byte either still decodes or raises CodecError —
        never any other exception and never a hang."""
        codec, frames = self.payloads()
        rng = make_rng(1234)
        for frame in frames:
            payload = bytearray(frame[HEADER.size :])
            for _ in range(300):
                index = int(rng.integers(0, len(payload)))
                value = int(rng.integers(0, 256))
                corrupted = bytearray(payload)
                corrupted[index] = value
                for kind in (KIND_REQUEST, KIND_BATCH_REQUEST):
                    try:
                        codec.decode_request(kind, bytes(corrupted))
                    except CodecError:
                        pass

    def test_random_response_bitflips_never_crash_the_decoder(self):
        codec = FrameCodec()
        frame = codec.encode_response(BatchResponse((
            QueryResponse.success(0.5, version=1, request_id=2),
            QueryResponse.failure("unavailable", "gone"),
            QueryResponse.control({"status": {"versions": [1]}}),
        ), request_id=5))
        kind, _ = codec.unpack_header(frame[: HEADER.size])
        payload = bytearray(frame[HEADER.size :])
        rng = make_rng(99)
        for _ in range(500):
            index = int(rng.integers(0, len(payload)))
            corrupted = bytearray(payload)
            corrupted[index] = int(rng.integers(0, 256))
            try:
                codec.decode_response(kind, bytes(corrupted))
            except CodecError:
                pass
