"""Tests for faulty-reading injection and filtering."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.rngs import make_rng
from repro.workloads.faults import FaultModel, filter_faulty, inject_faults


@pytest.fixture()
def rng():
    return make_rng(8)


@pytest.fixture()
def clean(rng):
    return rng.uniform(1, 1000, size=2_000)


class TestFaultModel:
    def test_invalid_rate(self):
        with pytest.raises(WorkloadError):
            FaultModel(rate=1.5)
        with pytest.raises(WorkloadError):
            FaultModel(rate=-0.1)

    def test_invalid_plausible_max(self):
        with pytest.raises(WorkloadError):
            FaultModel(plausible_max=0)


class TestInject:
    def test_corrupts_expected_fraction(self, clean, rng):
        model = FaultModel(rate=0.05)
        corrupted = inject_faults(clean, model, rng)
        changed = (corrupted != clean) | np.isnan(corrupted)
        assert changed.sum() == int(round(0.05 * clean.size))

    def test_zero_rate_is_identity(self, clean, rng):
        out = inject_faults(clean, FaultModel(rate=0.0), rng)
        assert np.array_equal(out, clean)

    def test_does_not_mutate_input(self, clean, rng):
        original = clean.copy()
        inject_faults(clean, FaultModel(rate=0.1), rng)
        assert np.array_equal(clean, original)

    def test_fault_modes_present(self, clean, rng):
        corrupted = inject_faults(clean, FaultModel(rate=0.3), rng)
        assert np.isnan(corrupted).any()
        assert (corrupted < 0).any()
        assert (corrupted > 1e12).any()


class TestFilter:
    def test_roundtrip_recovers_clean_population(self, clean, rng):
        corrupted = inject_faults(clean, FaultModel(rate=0.1), rng)
        survivors = filter_faulty(corrupted)
        assert np.isfinite(survivors).all()
        assert (survivors >= 0).all()
        # All clean readings survive.
        assert survivors.size >= int(clean.size * 0.9)

    def test_filters_paper_examples(self):
        # The paper's examples: bandwidth above 10^31 bps, negative memory.
        values = np.asarray([100.0, 1e31, -512.0, np.nan, np.inf, 5.0])
        out = filter_faulty(values)
        assert np.array_equal(out, [100.0, 5.0])

    def test_custom_plausible_max(self):
        values = np.asarray([10.0, 100.0, 1_000.0])
        out = filter_faulty(values, FaultModel(plausible_max=100.0))
        assert np.array_equal(out, [10.0, 100.0])
