"""Tests for drift models and drifting instances."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rngs import make_rng
from repro.core.config import Adam2Config
from repro.fastsim.adam2 import Adam2Simulation
from repro.workloads.dynamic import DriftModel
from repro.workloads.synthetic import uniform_workload


class TestDriftModel:
    def test_growth(self):
        model = DriftModel(growth_per_round=0.1)
        out = model.apply(np.asarray([100.0, 200.0]), make_rng(0))
        assert np.allclose(out, [110.0, 220.0])

    def test_shift(self):
        model = DriftModel(shift_per_round=5.0)
        out = model.apply(np.asarray([1.0]), make_rng(0))
        assert out[0] == 6.0

    def test_resample(self):
        model = DriftModel(resample_fraction=0.5, resample_workload=uniform_workload(1000, 2000))
        values = np.zeros(100)
        out = model.apply(values, make_rng(1))
        assert ((out >= 999) & (out <= 2001)).sum() == 50
        assert (out == 0).sum() == 50

    def test_input_not_mutated(self):
        values = np.asarray([1.0, 2.0])
        DriftModel(growth_per_round=0.1).apply(values, make_rng(0))
        assert np.array_equal(values, [1.0, 2.0])

    def test_is_static(self):
        assert DriftModel().is_static
        assert not DriftModel(growth_per_round=0.01).is_static

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftModel(growth_per_round=0.9)
        with pytest.raises(ConfigurationError):
            DriftModel(resample_fraction=2.0)
        with pytest.raises(ConfigurationError):
            DriftModel(resample_fraction=0.1)  # no workload given


class TestDriftingInstance:
    def _run(self, rate, rounds=25):
        sim = Adam2Simulation(
            uniform_workload(100, 1000), 300,
            Adam2Config(points=15, rounds_per_instance=rounds), seed=2,
        )
        sim.run_instance()  # warm-up on the static distribution
        return sim.run_instance(rounds=rounds, drift=DriftModel(growth_per_round=rate))

    def test_static_drift_is_baseline(self):
        result = self._run(0.0)
        assert result.errors_entire.maximum < 0.1

    def test_error_grows_with_drift(self):
        slow = self._run(0.001).errors_entire.average
        fast = self._run(0.02).errors_entire.average
        assert fast > 2 * slow

    def test_values_actually_drift(self):
        sim = Adam2Simulation(
            uniform_workload(100, 1000), 100,
            Adam2Config(points=10, rounds_per_instance=10), seed=3,
        )
        before = sim.values.copy()
        sim.run_instance(drift=DriftModel(growth_per_round=0.05))
        assert sim.values.mean() > before.mean() * 1.3

    def test_truth_measured_at_end(self):
        """Under drift the recorded truth reflects the final population."""
        sim = Adam2Simulation(
            uniform_workload(100, 1000), 100,
            Adam2Config(points=10, rounds_per_instance=10), seed=4,
        )
        result = sim.run_instance(drift=DriftModel(growth_per_round=0.05))
        assert result.truth.maximum == pytest.approx(sim.values.max())
