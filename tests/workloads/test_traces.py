"""Tests for trace save/load and SampledWorkload."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.rngs import make_rng
from repro.workloads.base import SampledWorkload
from repro.workloads.traces import load_trace, save_trace


@pytest.fixture()
def rng():
    return make_rng(17)


class TestSampledWorkload:
    def test_samples_come_from_trace(self, rng):
        trace = np.asarray([1.0, 2.0, 3.0])
        workload = SampledWorkload(trace)
        drawn = workload.sample(500, rng)
        assert set(np.unique(drawn)) <= {1.0, 2.0, 3.0}

    def test_len(self):
        assert len(SampledWorkload(np.asarray([1.0, 2.0]))) == 2

    def test_values_read_only(self):
        workload = SampledWorkload(np.asarray([1.0, 2.0]))
        with pytest.raises(ValueError):
            workload.values[0] = 9.0

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            SampledWorkload(np.asarray([]))

    def test_non_finite_rejected(self):
        with pytest.raises(WorkloadError):
            SampledWorkload(np.asarray([1.0, np.nan]))

    def test_negative_count_rejected(self, rng):
        with pytest.raises(WorkloadError):
            SampledWorkload(np.asarray([1.0])).sample(-1, rng)


class TestTraceRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        values = np.rint(rng.uniform(0, 100, size=50))
        path = tmp_path / "trace.csv"
        save_trace(path, values, name="load", unit="req/s", integral=True)
        workload = load_trace(path)
        assert workload.name == "load"
        assert workload.unit == "req/s"
        assert workload.integral is True
        assert np.array_equal(np.sort(workload.values), np.sort(values))

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_trace(tmp_path / "nope.csv")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# name=x, unit=, integral=1\nvalue\nnot-a-number\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# name=x, unit=, integral=1\nvalue\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_save_rejects_2d(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(tmp_path / "x.csv", np.zeros((2, 2)))
