"""Tests for the synthetic BOINC-like workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.rngs import make_rng
from repro.workloads import (
    boinc_bandwidth_kbps,
    boinc_cpu_mflops,
    boinc_disk_gb,
    boinc_ram_mb,
    boinc_workload,
)


@pytest.fixture()
def rng():
    return make_rng(99)


class TestCpu:
    def test_smooth_no_dominant_atom(self, rng):
        values = boinc_cpu_mflops().sample(20_000, rng)
        _, counts = np.unique(values, return_counts=True)
        assert counts.max() / values.size < 0.02

    def test_heavy_tail_span(self, rng):
        values = boinc_cpu_mflops().sample(20_000, rng)
        assert values.max() / values.min() > 50

    def test_integral(self, rng):
        values = boinc_cpu_mflops().sample(100, rng)
        assert np.array_equal(values, np.rint(values))

    def test_positive(self, rng):
        assert (boinc_cpu_mflops().sample(5_000, rng) > 0).all()


class TestRam:
    def test_step_structure(self, rng):
        values = boinc_ram_mb().sample(20_000, rng)
        unique, counts = np.unique(values, return_counts=True)
        top5 = np.sort(counts)[-5:].sum() / values.size
        assert top5 > 0.5, "RAM CDF must be dominated by a few exact sizes"

    def test_standard_sizes_present(self, rng):
        values = boinc_ram_mb().sample(20_000, rng)
        for size in (512.0, 1024.0, 2048.0):
            assert (values == size).mean() > 0.05

    def test_domain_bounds(self, rng):
        values = boinc_ram_mb().sample(20_000, rng)
        assert values.min() >= 32.0
        assert values.max() <= 16_384.0


class TestOtherAttributes:
    def test_bandwidth_positive_and_bounded(self, rng):
        values = boinc_bandwidth_kbps().sample(5_000, rng)
        assert (values >= 1.0).all()
        assert values.max() <= 200_000.0

    def test_disk_positive(self, rng):
        values = boinc_disk_gb().sample(5_000, rng)
        assert (values > 0).all()


class TestRegistry:
    @pytest.mark.parametrize("name", ["cpu", "ram", "bandwidth", "disk", "CPU", "ram_mb"])
    def test_lookup(self, name):
        assert boinc_workload(name) is not None

    def test_unknown_raises(self):
        with pytest.raises(WorkloadError):
            boinc_workload("gpu")

    def test_sample_negative_raises(self, rng):
        with pytest.raises(WorkloadError):
            boinc_cpu_mflops().sample(-1, rng)

    def test_sample_zero_is_empty(self, rng):
        assert boinc_cpu_mflops().sample(0, rng).size == 0


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = boinc_ram_mb().sample(1_000, make_rng(5))
        b = boinc_ram_mb().sample(1_000, make_rng(5))
        assert np.array_equal(a, b)

    def test_sample_one(self, rng):
        value = boinc_ram_mb().sample_one(rng)
        assert isinstance(value, float)
        assert value >= 32.0
