"""Tests for the generic synthetic workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.rngs import make_rng
from repro.workloads.synthetic import (
    lognormal_workload,
    normal_workload,
    step_workload,
    uniform_workload,
    zipf_workload,
)


@pytest.fixture()
def rng():
    return make_rng(4)


class TestUniform:
    def test_bounds(self, rng):
        values = uniform_workload(10, 20).sample(5_000, rng)
        assert values.min() >= 10 - 0.5  # rounding slack
        assert values.max() <= 20 + 0.5

    def test_invalid_range(self):
        with pytest.raises(WorkloadError):
            uniform_workload(5, 5)

    def test_non_integral(self, rng):
        values = uniform_workload(0, 1, integral=False).sample(100, rng)
        assert not np.array_equal(values, np.rint(values))


class TestNormal:
    def test_clipped_at_zero(self, rng):
        values = normal_workload(mean=1.0, std=10.0).sample(2_000, rng)
        assert (values >= 0).all()

    def test_invalid_std(self):
        with pytest.raises(WorkloadError):
            normal_workload(std=0.0)


class TestLognormal:
    def test_median_roughly_matches(self, rng):
        values = lognormal_workload(median=500.0, sigma=0.5).sample(20_000, rng)
        assert 400 < np.median(values) < 600

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            lognormal_workload(median=-1)
        with pytest.raises(WorkloadError):
            lognormal_workload(sigma=0)


class TestZipf:
    def test_capped(self, rng):
        values = zipf_workload(exponent=1.5, cap=100.0).sample(5_000, rng)
        assert values.max() <= 100.0

    def test_invalid_exponent(self):
        with pytest.raises(WorkloadError):
            zipf_workload(exponent=1.0)


class TestStep:
    def test_only_levels_appear(self, rng):
        levels = [10.0, 20.0, 30.0]
        values = step_workload(levels).sample(1_000, rng)
        assert set(np.unique(values)) <= set(levels)

    def test_weights_respected(self, rng):
        values = step_workload([1.0, 2.0], weights=[0.9, 0.1]).sample(10_000, rng)
        assert (values == 1.0).mean() > 0.8

    def test_bad_weights(self):
        with pytest.raises(WorkloadError):
            step_workload([1.0, 2.0], weights=[1.0])
        with pytest.raises(WorkloadError):
            step_workload([1.0, 2.0], weights=[-1.0, 2.0])

    def test_too_few_levels(self):
        with pytest.raises(WorkloadError):
            step_workload([1.0])
