"""Tests for the DistributionMonitor facade."""

import numpy as np
import pytest

from repro.errors import EstimationError, SimulationError
from repro.core.adaptive import AccuracyController
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.config import Adam2Config
from repro.monitor import DistributionMonitor, DistributionView
from repro.workloads.synthetic import lognormal_workload, uniform_workload


def quick_config(**kwargs):
    defaults = dict(
        points=12, rounds_per_instance=15, instance_frequency=3,
        initial_size_estimate=20.0, verification_points=8,
    )
    defaults.update(kwargs)
    return Adam2Config(**defaults)


@pytest.fixture()
def monitor():
    return DistributionMonitor(
        workload=uniform_workload(0, 1000), n_nodes=100, config=quick_config(), seed=4
    )


class TestLifecycle:
    def test_snapshot_before_estimate_raises(self, monitor):
        with pytest.raises(EstimationError):
            monitor.snapshot()

    def test_advance_until_estimate(self, monitor):
        rounds = monitor.advance_until_estimate(max_rounds=400)
        assert rounds <= 400
        assert monitor.coverage() > 0.5

    def test_snapshot_contents(self, monitor):
        monitor.advance_until_estimate(max_rounds=400)
        monitor.advance(16)  # let stragglers finish
        view = monitor.snapshot()
        assert isinstance(view, DistributionView)
        assert view.system_size == pytest.approx(100, rel=0.3)
        assert view.confidence_avg is not None
        assert 0 <= view.fraction_below(500.0) <= 1

    def test_never_estimates_raises(self):
        monitor = DistributionMonitor(
            workload=uniform_workload(0, 10), n_nodes=50,
            config=quick_config(instance_frequency=10_000, initial_size_estimate=10_000.0),
            seed=5,
        )
        with pytest.raises(SimulationError):
            monitor.advance_until_estimate(max_rounds=10)

    def test_churned_monitor_keeps_running(self):
        monitor = DistributionMonitor(
            workload=lognormal_workload(), n_nodes=100, config=quick_config(),
            seed=6, churn_rate=0.005,
        )
        monitor.advance_until_estimate(max_rounds=400)
        assert monitor.true_values().size == 100


class TestView:
    @pytest.fixture()
    def view(self):
        values = np.arange(1, 101, dtype=float)
        truth = EmpiricalCDF(values)
        estimate = EstimatedCDF(values, truth.evaluate(values), 1.0, 100.0, system_size=100.0)
        return DistributionView(estimate=estimate, system_size=100.0, round=1)

    def test_rank_matches_fraction(self, view):
        assert view.rank_of(50.0) == view.fraction_below(50.0)
        assert view.rank_of(50.0) == pytest.approx(0.5, abs=0.02)

    def test_quantile(self, view):
        assert view.quantile(0.25) == pytest.approx(25.0, abs=1.5)

    def test_slices(self, view):
        assert view.slice_of(5.0, slices=10) == 0
        assert view.slice_of(95.0, slices=10) == 9
        assert view.slice_of(55.0, slices=10) == 5

    def test_slice_validation(self, view):
        with pytest.raises(EstimationError):
            view.slice_of(5.0, slices=0)

    def test_top_slice_clamped(self, view):
        assert view.slice_of(1e9, slices=4) == 3

    def test_interquantile_ratio(self, view):
        assert view.interquantile_ratio(0.5, 0.9) == pytest.approx(90 / 50, rel=0.1)


class TestAdaptiveMonitor:
    def test_controller_grows_points(self):
        controller = AccuracyController(target=1e-12, max_points=48, patience=1)
        monitor = DistributionMonitor(
            workload=lognormal_workload(), n_nodes=80,
            config=quick_config(selection="lcut"), seed=7, controller=controller,
        )
        monitor.advance(150)
        # The unreachable target forces growth up to the cap.
        assert monitor.config.points > 12

    def test_controller_requires_verification(self):
        with pytest.raises(SimulationError):
            DistributionMonitor(
                workload=uniform_workload(0, 10), n_nodes=30,
                config=quick_config(verification_points=0),
                controller=AccuracyController(target=0.01),
            )
