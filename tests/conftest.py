"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rngs import make_rng
from repro.core.cdf import EmpiricalCDF, EstimatedCDF


@pytest.fixture()
def rng():
    """A deterministic root generator, fresh per test."""
    return make_rng(1234)


@pytest.fixture()
def step_values():
    """A small population with a pronounced step CDF."""
    return np.asarray([100.0] * 30 + [200.0] * 50 + [400.0] * 15 + [800.0] * 5)


@pytest.fixture()
def smooth_values(rng):
    """A smooth-ish positive population."""
    return np.rint(rng.lognormal(mean=np.log(300.0), sigma=0.5, size=500))


@pytest.fixture()
def step_truth(step_values):
    return EmpiricalCDF(step_values)


@pytest.fixture()
def perfect_estimate(step_truth):
    """An estimate whose points sit exactly on the true CDF."""
    thresholds = np.asarray([100.0, 200.0, 400.0, 800.0])
    return EstimatedCDF(
        thresholds=thresholds,
        fractions=step_truth.evaluate(thresholds),
        minimum=step_truth.minimum,
        maximum=step_truth.maximum,
    )
