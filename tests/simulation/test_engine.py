"""Tests for the round-based engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.rngs import make_rng
from repro.overlay.random_graph import FullMeshOverlay
from repro.simulation.engine import Engine, Protocol
from repro.simulation.node_base import SimNode
from repro.simulation.runner import build_engine, run_until
from repro.workloads.synthetic import uniform_workload


class CountingProtocol(Protocol):
    """Test protocol: counts exchanges and per-node ticks."""

    name = "counter"

    def __init__(self):
        self.added = 0
        self.removed = 0
        self.exchanges = 0
        self.ticks = 0

    def on_node_added(self, node, engine):
        node.state[self.name] = 0
        self.added += 1

    def on_node_removed(self, node, engine):
        self.removed += 1

    def exchange(self, initiator, responder, engine):
        self.exchanges += 1
        initiator.state[self.name] += 1
        responder.state[self.name] += 1
        return 10, 10

    def after_node_round(self, node, engine):
        self.ticks += 1


def make_engine(n=10, seed=0, protocol=None):
    protocol = protocol or CountingProtocol()
    rng = make_rng(seed)
    engine = build_engine(uniform_workload(0, 100), n, [protocol], rng, overlay="mesh")
    return engine, protocol


class TestPopulation:
    def test_populate(self):
        engine, protocol = make_engine(10)
        assert engine.node_count == 10
        assert protocol.added == 10

    def test_node_ids_unique_and_stable(self):
        engine, _ = make_engine(5)
        ids = list(engine.nodes)
        engine.remove_node(ids[0])
        node = engine.add_node(50.0)
        assert node.node_id not in ids  # never reused

    def test_remove_unknown_raises(self):
        engine, _ = make_engine(3)
        with pytest.raises(SimulationError):
            engine.remove_node(999)

    def test_attribute_values(self):
        engine, _ = make_engine(6)
        assert engine.attribute_values().size == 6

    def test_random_node(self):
        engine, _ = make_engine(4)
        assert engine.random_node().node_id in engine.nodes


class TestRounds:
    def test_each_node_initiates_once_per_round(self):
        engine, protocol = make_engine(10)
        engine.run_round()
        assert protocol.exchanges == 10
        assert protocol.ticks == 10

    def test_messages_accounted(self):
        engine, _ = make_engine(10)
        engine.run_round()
        summary = engine.network.summary(engine.node_count)
        assert summary.messages_total == 20  # request + response per exchange
        assert summary.bytes_total == 200

    def test_round_counter(self):
        engine, _ = make_engine(4)
        engine.run(3)
        assert engine.round == 3

    def test_negative_rounds_rejected(self):
        engine, _ = make_engine(4)
        with pytest.raises(SimulationError):
            engine.run(-1)

    def test_observer_invoked(self):
        observed = []
        engine, _ = make_engine(4)
        engine.observers.append(lambda e: observed.append(e.round))
        engine.run(2)
        assert observed == [1, 2]

    def test_duplicate_protocol_names_rejected(self):
        rng = make_rng(0)
        with pytest.raises(SimulationError):
            Engine(FullMeshOverlay([0, 1]), [CountingProtocol(), CountingProtocol()], rng)

    def test_determinism(self):
        engine_a, protocol_a = make_engine(8, seed=5)
        engine_b, protocol_b = make_engine(8, seed=5)
        engine_a.run(5)
        engine_b.run(5)
        state_a = [node.state["counter"] for node in engine_a.nodes.values()]
        state_b = [node.state["counter"] for node in engine_b.nodes.values()]
        assert state_a == state_b


class TestRunUntil:
    def test_stops_on_predicate(self):
        engine, _ = make_engine(4)
        executed = run_until(engine, lambda e: e.round >= 3, max_rounds=10)
        assert executed == 3
        assert engine.round == 3

    def test_raises_when_never_satisfied(self):
        engine, _ = make_engine(4)
        with pytest.raises(SimulationError):
            run_until(engine, lambda e: False, max_rounds=3)


class TestSimNode:
    def test_values_1d(self):
        node = SimNode(1, 5.0, make_rng(0))
        assert node.values.shape == (1,)
        assert node.value == 5.0

    def test_empty_values_rejected(self):
        with pytest.raises(SimulationError):
            SimNode(1, np.asarray([]), make_rng(0))


class TestBuildEngine:
    @pytest.mark.parametrize("overlay", ["mesh", "random", "sampling"])
    def test_overlay_kinds(self, overlay):
        rng = make_rng(1)
        engine = build_engine(uniform_workload(0, 10), 12, [CountingProtocol()], rng, overlay=overlay)
        engine.run(2)
        assert engine.round == 2

    def test_unknown_overlay(self):
        with pytest.raises(SimulationError):
            build_engine(uniform_workload(0, 10), 5, [CountingProtocol()], make_rng(1), overlay="torus")

    def test_too_small(self):
        with pytest.raises(SimulationError):
            build_engine(uniform_workload(0, 10), 1, [CountingProtocol()], make_rng(1))
