"""Tests for churn models, network accounting, and observers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rngs import make_rng
from repro.simulation.churn import NoChurn, ReplacementChurn
from repro.simulation.engine import Protocol
from repro.simulation.network import NetworkAccounting
from repro.simulation.observers import RoundRecorder
from repro.simulation.runner import build_engine
from repro.workloads.synthetic import uniform_workload


class NullProtocol(Protocol):
    name = "null"

    def on_node_added(self, node, engine):
        node.state[self.name] = None

    def exchange(self, initiator, responder, engine):
        return 0, 0


def make_engine(n=50, churn=None, seed=0):
    return build_engine(
        uniform_workload(0, 100), n, [NullProtocol()], make_rng(seed), overlay="mesh", churn=churn
    )


class TestReplacementChurn:
    def test_population_constant(self):
        rng = make_rng(1)
        churn = ReplacementChurn(0.2, uniform_workload(0, 100), rng)
        engine = make_engine(50, churn)
        engine.run(10)
        assert engine.node_count == 50
        assert churn.replaced > 0

    def test_zero_rate_no_replacement(self):
        churn = ReplacementChurn(0.0, uniform_workload(0, 100), make_rng(1))
        engine = make_engine(20, churn)
        ids_before = set(engine.nodes)
        engine.run(5)
        assert set(engine.nodes) == ids_before

    def test_replaced_nodes_get_fresh_values(self):
        rng = make_rng(2)
        churn = ReplacementChurn(0.5, uniform_workload(1000, 2000), rng)
        engine = make_engine(20, churn)
        engine.run(3)
        values = engine.attribute_values()
        assert (values >= 1000).any()  # replacements drawn from new range

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            ReplacementChurn(1.5, uniform_workload(0, 1), make_rng(0))

    def test_invalid_bootstrap_contacts(self):
        with pytest.raises(ConfigurationError):
            ReplacementChurn(0.1, uniform_workload(0, 1), make_rng(0), bootstrap_contacts=0)

    def test_never_empties_system(self):
        churn = ReplacementChurn(1.0, uniform_workload(0, 100), make_rng(3))
        engine = make_engine(10, churn)
        engine.run(5)
        assert engine.node_count == 10

    def test_no_churn_noop(self):
        engine = make_engine(10, NoChurn())
        ids = set(engine.nodes)
        engine.run(3)
        assert set(engine.nodes) == ids


class TestNetworkAccounting:
    def test_record_exchange(self):
        net = NetworkAccounting()
        net.record_exchange(1, 2, 100, 80)
        assert net.messages_sent[1] == 1
        assert net.messages_sent[2] == 1
        assert net.bytes_sent[1] == 100
        assert net.bytes_sent[2] == 80

    def test_summary(self):
        net = NetworkAccounting()
        net.record_exchange(1, 2, 100, 100)
        net.end_round()
        summary = net.summary(2)
        assert summary.messages_total == 2
        assert summary.bytes_per_node == 100.0
        assert summary.bytes_per_node_per_round == 100.0

    def test_reset(self):
        net = NetworkAccounting()
        net.record_exchange(1, 2, 10, 10)
        net.reset()
        assert net.summary(2).bytes_total == 0

    def test_empty_summary(self):
        summary = NetworkAccounting().summary(0)
        assert summary.messages_per_node == 0.0
        assert summary.bytes_per_node_per_round == 0.0


class TestRoundRecorder:
    def test_records_every_round(self):
        recorder = RoundRecorder(lambda engine: engine.node_count)
        engine = make_engine(10)
        engine.observers.append(recorder)
        engine.run(4)
        assert recorder.rounds == [1, 2, 3, 4]
        assert recorder.last() == 10

    def test_every_k(self):
        recorder = RoundRecorder(lambda engine: engine.round, every=2)
        engine = make_engine(10)
        engine.observers.append(recorder)
        engine.run(5)
        assert recorder.rounds == [2, 4]

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            RoundRecorder(lambda e: 0).last()

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            RoundRecorder(lambda e: 0, every=0)
