"""Backend parity: the same spec converges to the same answer everywhere.

The three backends share no simulation code — the fast backend is a
vectorised matrix loop, the round backend schedules per-node exchanges,
the async backend runs an event queue with latency and clock jitter.
Agreement between them on the *converged* estimate is therefore a strong
end-to-end check of all three.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import run
from repro.core.config import Adam2Config
from repro.workloads import lognormal_workload

WORKLOAD = lognormal_workload()
N_NODES = 200
CONFIG = Adam2Config(points=10, rounds_per_instance=30)


@pytest.fixture(scope="module")
def results():
    return {
        backend: run(CONFIG, WORKLOAD, backend=backend, n_nodes=N_NODES, seed=17)
        for backend in ("fast", "round", "async")
    }


@pytest.mark.parametrize("backend", ["fast", "round", "async"])
def test_each_backend_converges(results, backend):
    final = results[backend].final
    assert final.reached == N_NODES
    # 30 rounds of epidemic averaging leave only interpolation error:
    # at the interpolation points themselves the estimate is near-exact,
    # while the entire-CDF error is bounded by the 10-point grid.  The
    # async backend terminates on local clocks with messages in flight,
    # so a small residue remains at the points.
    points_budget = 0.02 if backend == "async" else 1e-3
    assert final.errors_points.maximum < points_budget
    assert final.errors_entire.maximum < 0.2
    assert final.errors_entire.average < 0.05


@pytest.mark.parametrize("other", ["round", "async"])
def test_estimates_match_fast_backend(results, other):
    """Same seed → same sampled population → near-identical CDF points."""
    fast = results["fast"].estimate
    alt = results[other].estimate
    # Thresholds are picked from each backend's own sampled population;
    # with the same seed the populations are drawn from the same
    # distribution, so compare the estimated CDFs on the fast grid.
    # Each backend draws its own 200-node population from the workload,
    # so the comparison is bounded by sampling noise (~1.36·sqrt(2/N)
    # for a two-sample KS deviation), not by protocol error.
    fast_fractions = np.asarray(fast.fractions)
    alt_at = np.interp(fast.thresholds, alt.thresholds, np.asarray(alt.fractions))
    assert np.max(np.abs(fast_fractions - alt_at)) < 0.2
    assert np.mean(np.abs(fast_fractions - alt_at)) < 0.08


def test_traffic_accounting_consistent(results):
    for backend, result in results.items():
        final = result.final
        assert final.messages > 0, backend
        # Payloads scale with the synopsis: at least one float per point.
        assert final.bytes >= final.messages, backend
