"""The backend registry and the ``repro.api.run`` facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_backend, list_backends, run
from repro.core.config import Adam2Config
from repro.errors import ConfigurationError, SimulationError
from repro.rngs import make_rng
from repro.workloads import lognormal_workload

WORKLOAD = lognormal_workload()
CONFIG = Adam2Config(points=5, rounds_per_instance=15)


class TestRegistry:
    def test_all_backends_registered(self):
        assert {"fast", "round", "async"} <= set(list_backends())

    def test_get_backend_returns_named_engine(self):
        for name in ("fast", "round", "async"):
            assert get_backend(name).name == name

    def test_unknown_backend_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="fast"):
            get_backend("warp")

    def test_supported_options_disjoint_from_core_args(self):
        for name in list_backends():
            engine = get_backend(name)
            assert not {"backend", "seed", "observers"} & set(engine.supported_options)


class TestRunFacade:
    def test_result_shape(self):
        result = run(CONFIG, WORKLOAD, backend="fast", n_nodes=64, instances=2, seed=3)
        assert result.backend == "fast"
        assert result.n_nodes == 64
        assert len(result) == 2
        assert result.final is result.instances[-1]
        assert result.estimate is not None
        assert len(result.estimate.thresholds) == CONFIG.points
        for instance in result.instances:
            assert instance.reached == 64
            assert np.isfinite(instance.errors_entire.maximum)
            assert instance.messages > 0 and instance.bytes > 0

    @pytest.mark.parametrize("backend", ["fast", "round", "async"])
    def test_same_seed_reproduces(self, backend):
        results = [
            run(CONFIG, WORKLOAD, backend=backend, n_nodes=48, seed=11)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            results[0].estimate.fractions, results[1].estimate.fractions
        )
        assert results[0].final.errors_entire == results[1].final.errors_entire
        assert results[0].final.messages == results[1].final.messages

    def test_rounds_override_applies(self):
        result = run(CONFIG, WORKLOAD, backend="fast", n_nodes=48, seed=3, rounds=7)
        assert result.config.rounds_per_instance == 7

    def test_rounds_override_validated(self):
        with pytest.raises(ConfigurationError):
            run(CONFIG, WORKLOAD, backend="fast", n_nodes=48, rounds=0)

    def test_unknown_option_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="turbo"):
            run(CONFIG, WORKLOAD, backend="round", n_nodes=48, turbo=True)

    def test_option_valid_elsewhere_still_fails(self):
        # churn_rate is a fast-only option; round must reject it.
        with pytest.raises(ConfigurationError, match="churn_rate"):
            run(CONFIG, WORKLOAD, backend="round", n_nodes=48, churn_rate=0.01)

    def test_rng_seeds_the_run(self):
        results = [
            run(CONFIG, WORKLOAD, backend="fast", n_nodes=48, rng=make_rng(5))
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            results[0].estimate.fractions, results[1].estimate.fractions
        )

    def test_seed_and_rng_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            run(CONFIG, WORKLOAD, backend="fast", n_nodes=48, seed=3, rng=make_rng(5))

    def test_tiny_population_rejected(self):
        with pytest.raises(ConfigurationError):
            run(CONFIG, WORKLOAD, backend="fast", n_nodes=1)


class TestShardedFastBackend:
    def test_shards_option_routes_to_shard_driver(self):
        result = run(
            CONFIG, WORKLOAD, backend="fast", n_nodes=256, instances=2, seed=3,
            shards=4,
        )
        assert result.backend == "fast"
        assert result.extras["shards"] == 4
        assert len(result) == 2
        for instance in result.instances:
            assert instance.reached == 256

    def test_sharded_dtype_option(self):
        result = run(
            CONFIG, WORKLOAD, backend="fast", n_nodes=256, seed=3,
            shards=4, dtype="float32",
        )
        assert result.final.reached == 256

    def test_shards_one_stays_single_process(self):
        result = run(CONFIG, WORKLOAD, backend="fast", n_nodes=64, seed=3, shards=1)
        assert "shards" not in result.extras

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            run(CONFIG, WORKLOAD, backend="fast", n_nodes=64, seed=3, shards=0)

    def test_incompatible_option_rejected_loudly(self):
        with pytest.raises(ConfigurationError, match="churn_rate"):
            run(
                CONFIG, WORKLOAD, backend="fast", n_nodes=256, seed=3,
                shards=4, churn_rate=0.01,
            )


class TestRunResult:
    def test_errors_by_instance(self):
        result = run(CONFIG, WORKLOAD, backend="fast", n_nodes=48, instances=2, seed=3)
        max_series, avg_series = result.errors_by_instance()
        assert len(max_series) == len(avg_series) == 2
        assert max_series[-1] == result.final.errors_entire.maximum
        assert avg_series[-1] == result.final.errors_entire.average

    def test_empty_result_raises(self):
        from repro.api.result import RunResult

        empty = RunResult(backend="fast", n_nodes=48, seed=0, config=CONFIG)
        with pytest.raises(SimulationError):
            _ = empty.final


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "module_name, backend",
        [("repro.fastsim", "fast"), ("repro.simulation", "round"), ("repro.asyncsim", "async")],
    )
    def test_old_entry_points_warn_and_delegate(self, module_name, backend):
        import importlib

        module = importlib.import_module(module_name)
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            result = module.run_adam2(CONFIG, WORKLOAD, n_nodes=48, seed=3)
        assert result.backend == backend
        assert len(result) == 1
