"""Backend registry edge cases: registration, replacement, lookup."""

from __future__ import annotations

import pytest

from repro.api import (
    Backend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.api import _REGISTRY  # noqa: PLC2701 — tests restore registry state
from repro.errors import ConfigurationError


class _Stub(Backend):
    name = "stub"
    supported_options = frozenset({"knob"})

    def run(self, spec, hub):  # pragma: no cover - never executed
        raise NotImplementedError


@pytest.fixture
def clean_registry():
    """Snapshot and restore the process-wide registry around each test."""
    snapshot = dict(_REGISTRY)
    try:
        yield
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(snapshot)


class TestRegisterBackend:
    def test_builtin_backends_present(self):
        assert {"fast", "round", "async", "net"} <= set(list_backends())

    def test_register_and_lookup(self, clean_registry):
        stub = _Stub()
        register_backend(stub)
        assert get_backend("stub") is stub

    def test_duplicate_name_replaces_silently(self, clean_registry):
        first, second = _Stub(), _Stub()
        register_backend(first)
        register_backend(second)
        assert get_backend("stub") is second  # latest registration wins

    def test_blank_name_rejected(self, clean_registry):
        stub = _Stub()
        stub.name = ""
        with pytest.raises(ConfigurationError, match="distinctive name"):
            register_backend(stub)

    def test_default_base_name_rejected(self, clean_registry):
        stub = _Stub()
        stub.name = Backend.name  # "backend": forgot to override
        with pytest.raises(ConfigurationError, match="distinctive name"):
            register_backend(stub)

    def test_replacement_does_not_change_other_entries(self, clean_registry):
        before = set(list_backends())
        register_backend(_Stub())
        register_backend(_Stub())
        assert set(list_backends()) == before | {"stub"}


class TestListBackends:
    def test_sorted_order(self, clean_registry):
        stub_z, stub_a = _Stub(), _Stub()
        stub_z.name = "zzz"
        stub_a.name = "aaa"
        register_backend(stub_z)
        register_backend(stub_a)
        names = list_backends()
        assert names == sorted(names)
        assert names.index("aaa") < names.index("zzz")

    def test_listing_is_a_copy(self, clean_registry):
        names = list_backends()
        names.append("bogus")
        assert "bogus" not in list_backends()


class TestGetBackend:
    def test_unknown_name_fails_loudly_with_known_names(self):
        with pytest.raises(ConfigurationError, match="unknown backend 'nope'"):
            get_backend("nope")

    def test_error_lists_registered_backends(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_backend("nope")
        message = str(excinfo.value)
        # Every registered backend must be named, quoted, in the message —
        # the caller should never have to guess what `backend=` accepts.
        for name in list_backends():
            assert repr(name) in message
        assert "registered backends:" in message

    def test_net_backend_options(self):
        net = get_backend("net")
        assert "drop_rate" in net.supported_options
        with pytest.raises(ConfigurationError, match="does not support"):
            net.validate_options({"warp_speed": True})
