"""Tests for the gossip merge rules."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.core.interpolation import InterpolationSet
from repro.core.merge import merge_average, merge_extremes, merge_interpolation_sets


class TestMergeAverage:
    def test_elementwise_mean(self):
        out = merge_average(np.asarray([0.0, 1.0]), np.asarray([1.0, 0.0]))
        assert np.array_equal(out, [0.5, 0.5])

    def test_mass_conservation(self):
        a = np.asarray([0.2, 0.8, 0.4])
        b = np.asarray([0.6, 0.0, 1.0])
        merged = merge_average(a, b)
        assert (2 * merged).sum() == pytest.approx((a + b).sum())

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            merge_average(np.asarray([1.0]), np.asarray([1.0, 2.0]))


class TestMergeExtremes:
    def test_min_max(self):
        assert merge_extremes((1.0, 5.0), (0.5, 4.0)) == (0.5, 5.0)

    def test_idempotent(self):
        assert merge_extremes((1.0, 5.0), (1.0, 5.0)) == (1.0, 5.0)


class TestMergeInterpolationSets:
    def test_full_merge(self):
        thresholds = np.asarray([10.0, 20.0])
        a = InterpolationSet.from_indicator(5.0, thresholds)   # [1, 1]
        b = InterpolationSet.from_indicator(15.0, thresholds)  # [0, 1]
        merged = merge_interpolation_sets(a, b)
        assert np.array_equal(merged.fractions, [0.5, 1.0])
        assert merged.minimum == 5.0
        assert merged.maximum == 15.0

    def test_threshold_mismatch_rejected(self):
        a = InterpolationSet.from_indicator(5.0, np.asarray([10.0]))
        b = InterpolationSet.from_indicator(5.0, np.asarray([11.0]))
        with pytest.raises(ProtocolError):
            merge_interpolation_sets(a, b)

    def test_inputs_not_mutated(self):
        thresholds = np.asarray([10.0])
        a = InterpolationSet.from_indicator(5.0, thresholds)
        b = InterpolationSet.from_indicator(15.0, thresholds)
        merge_interpolation_sets(a, b)
        assert a.fractions[0] == 1.0
        assert b.fractions[0] == 0.0
