"""Tests for verification points and confidence estimation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.core.cdf import EstimatedCDF
from repro.core.confidence import (
    estimate_errors,
    estimate_errors_matrix,
    select_verification_points,
)


@pytest.fixture()
def estimate():
    return EstimatedCDF(np.asarray([0.0, 50.0, 100.0]), np.asarray([0.0, 0.5, 1.0]), 0.0, 100.0)


@pytest.fixture()
def step_estimate():
    thresholds = np.asarray([0.0, 49.0, 51.0, 100.0])
    return EstimatedCDF(thresholds, np.asarray([0.0, 0.05, 0.95, 1.0]), 0.0, 100.0)


class TestSelectVerificationPoints:
    def test_average_target_uniform(self):
        out = select_verification_points(4, "average", None, 0.0, 100.0)
        assert out.size == 4
        assert np.allclose(np.diff(out), 20.0)
        assert out[0] > 0.0 and out[-1] < 100.0

    def test_maximum_target_bisects_steep_gaps(self, step_estimate):
        out = select_verification_points(5, "maximum", step_estimate, 0.0, 100.0)
        assert out.size == 5
        # The steep gap is at [49, 51]: verification points concentrate there.
        assert ((out >= 48.0) & (out <= 52.0)).sum() >= 3

    def test_zero_count(self):
        assert select_verification_points(0, "average", None, 0.0, 1.0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            select_verification_points(-1, "average", None, 0.0, 1.0)

    def test_unknown_target_rejected(self, estimate):
        with pytest.raises(ConfigurationError):
            select_verification_points(3, "p99", estimate, 0.0, 100.0)

    def test_degenerate_domain(self):
        out = select_verification_points(3, "average", None, 5.0, 5.0)
        assert np.array_equal(out, [5.0] * 3)

    def test_maximum_without_previous_falls_back(self):
        out = select_verification_points(3, "maximum", None, 0.0, 10.0)
        assert out.size == 3


class TestEstimateErrors:
    def test_perfect_estimate_zero_errors(self, estimate):
        v_t = np.asarray([25.0, 75.0])
        report = estimate_errors(estimate, v_t, estimate.evaluate(v_t))
        assert report.est_maximum == pytest.approx(0.0, abs=1e-12)
        assert report.est_average == pytest.approx(0.0, abs=1e-12)
        assert report.points == 2

    def test_known_residuals(self, estimate):
        v_t = np.asarray([25.0, 75.0])
        v_f = estimate.evaluate(v_t) + np.asarray([0.1, -0.05])
        report = estimate_errors(estimate, v_t, v_f)
        assert report.est_maximum == pytest.approx(0.1)
        assert report.est_average == pytest.approx(0.075)

    def test_empty_rejected(self, estimate):
        with pytest.raises(EstimationError):
            estimate_errors(estimate, np.asarray([]), np.asarray([]))

    def test_shape_mismatch_rejected(self, estimate):
        with pytest.raises(EstimationError):
            estimate_errors(estimate, np.asarray([1.0]), np.asarray([0.5, 0.6]))


class TestEstimateErrorsMatrix:
    def test_matches_scalar_version(self, estimate):
        thresholds = estimate.thresholds
        fractions = np.vstack([estimate.fractions, estimate.fractions * 0.9])
        v_t = np.asarray([25.0, 75.0])
        v_f = np.vstack([estimate.evaluate(v_t), estimate.evaluate(v_t) + 0.05])
        est_m, est_a = estimate_errors_matrix(
            thresholds, fractions, np.zeros(2), np.full(2, 100.0), v_t, v_f
        )
        assert est_m.shape == (2,)
        scalar = estimate_errors(estimate, v_t, v_f[0])
        assert est_m[0] == pytest.approx(scalar.est_maximum, abs=1e-12)
        assert est_a[0] == pytest.approx(scalar.est_average, abs=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            estimate_errors_matrix(
                np.asarray([1.0]), np.asarray([[0.5]]), np.zeros(1), np.ones(1),
                np.asarray([]), np.empty((1, 0)),
            )
