"""Tests for Adam2Node and the pairwise gossip exchange."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.rngs import make_rng, spawn
from repro.core.config import Adam2Config
from repro.core.node import Adam2Node, gossip_exchange


def make_node(node_id, value, config=None, seed=0):
    config = config or Adam2Config(points=4, rounds_per_instance=5)
    return Adam2Node(node_id, value, config, make_rng(seed + node_id))


def wire_population(values, config=None, seed=0):
    return [make_node(i, v, config, seed) for i, v in enumerate(values)]


class TestLifecycle:
    def test_start_instance_creates_state(self):
        node = make_node(0, 10.0)
        iid = node.start_instance(neighbour_values=np.asarray([5.0, 20.0, 30.0, 40.0]))
        assert iid in node.instances
        state = node.instances[iid]
        assert state.initiator
        assert state.weight == 1.0
        assert state.ttl == node.config.rounds_per_instance

    def test_duplicate_instance_rejected(self):
        node = make_node(0, 10.0)
        node.start_instance(neighbour_values=np.asarray([5.0, 20.0]), instance_id="x")
        with pytest.raises(ProtocolError):
            node.start_instance(neighbour_values=np.asarray([5.0, 20.0]), instance_id="x")

    def test_end_of_round_ttl_and_finalise(self):
        config = Adam2Config(points=4, rounds_per_instance=2)
        node = make_node(0, 10.0, config)
        node.start_instance(neighbour_values=np.asarray([5.0, 20.0]))
        assert node.end_of_round() == []
        finished = node.end_of_round()
        assert len(finished) == 1
        assert node.instances == {}
        assert node.current_estimate is not None

    def test_double_join_rejected(self):
        a = make_node(0, 10.0)
        b = make_node(1, 20.0)
        a.start_instance(neighbour_values=np.asarray([5.0, 20.0]), instance_id="x")
        b.join_instance(a.instances["x"])
        with pytest.raises(ProtocolError):
            b.join_instance(a.instances["x"])

    def test_self_exchange_rejected(self):
        node = make_node(0, 10.0)
        with pytest.raises(ProtocolError):
            gossip_exchange(node, node)

    def test_empty_values_rejected(self):
        with pytest.raises(ProtocolError):
            make_node(0, np.asarray([]))


class TestGossipConvergence:
    def _run_rounds(self, nodes, rounds, rng):
        for _ in range(rounds):
            order = rng.permutation(len(nodes))
            for i in order:
                j = int(rng.integers(0, len(nodes) - 1))
                j = j + (j >= i)
                gossip_exchange(nodes[int(i)], nodes[int(j)])
            for node in nodes:
                node.end_of_round()

    def test_all_nodes_converge_to_true_fractions(self):
        rng = make_rng(5)
        values = np.asarray([10.0, 20.0, 30.0, 40.0] * 5)
        config = Adam2Config(points=3, rounds_per_instance=30)
        nodes = wire_population(values, config)
        nodes[0].start_instance(neighbour_values=values, instance_id="x")
        self._run_rounds(nodes, 31, rng)
        for node in nodes:
            assert node.current_estimate is not None
            # F(20) over the population is exactly 0.5.
            assert node.current_estimate.evaluate(np.asarray([20.0]))[0] == pytest.approx(0.5, abs=1e-6)

    def test_size_estimation_converges(self):
        rng = make_rng(6)
        values = np.linspace(1, 100, 24)
        config = Adam2Config(points=3, rounds_per_instance=30)
        nodes = wire_population(values, config)
        nodes[0].start_instance(neighbour_values=values, instance_id="x")
        self._run_rounds(nodes, 31, rng)
        for node in nodes:
            assert node.size_estimate == pytest.approx(24.0, rel=1e-6)

    def test_extremes_discovered(self):
        rng = make_rng(7)
        values = np.asarray([7.0, 3.0, 99.0, 50.0, 20.0, 12.0, 64.0, 31.0])
        config = Adam2Config(points=3, rounds_per_instance=20)
        nodes = wire_population(values, config)
        nodes[0].start_instance(neighbour_values=values, instance_id="x")
        self._run_rounds(nodes, 21, rng)
        for node in nodes:
            assert node.current_estimate.minimum == 3.0
            assert node.current_estimate.maximum == 99.0

    def test_literal_join_does_not_conserve_mass(self):
        config = Adam2Config(points=2, rounds_per_instance=10, join_mode="literal")
        a = make_node(0, 10.0, config)
        b = make_node(1, 99.0, config)
        a.start_instance(neighbour_values=np.asarray([10.0, 99.0]), instance_id="x")
        before = a.instances["x"].h.fractions.copy()
        gossip_exchange(a, b)
        # Literal mode: the informed peer keeps its state unchanged.
        assert np.array_equal(a.instances["x"].h.fractions, before)
        assert "x" in b.instances

    def test_symmetric_join_conserves_mass(self):
        config = Adam2Config(points=2, rounds_per_instance=10, join_mode="symmetric")
        a = make_node(0, 10.0, config)
        b = make_node(1, 99.0, config)
        a.start_instance(neighbour_values=np.asarray([10.0, 99.0]), instance_id="x")
        indicator_a = a.instances["x"].h.fractions.copy()
        gossip_exchange(a, b)
        state_a = a.instances["x"].h.fractions
        state_b = b.instances["x"].h.fractions
        indicator_b = (99.0 <= a.instances["x"].h.thresholds).astype(float)
        assert np.allclose(state_a + state_b, indicator_a + indicator_b)


class TestConfidence:
    def test_confidence_report_produced(self):
        rng = make_rng(9)
        config = Adam2Config(points=5, rounds_per_instance=25, verification_points=5)
        values = np.linspace(1, 100, 16)
        nodes = wire_population(values, config)
        nodes[0].start_instance(neighbour_values=values, instance_id="x")
        for _ in range(26):
            order = rng.permutation(len(nodes))
            for i in order:
                j = int(rng.integers(0, len(nodes) - 1))
                j = j + (j >= i)
                gossip_exchange(nodes[int(i)], nodes[int(j)])
            for node in nodes:
                node.end_of_round()
        for node in nodes:
            assert node.last_confidence is not None
            assert node.last_confidence.points == 5
            assert node.last_confidence.est_maximum >= node.last_confidence.est_average


class TestSchedulingAndBootstrap:
    def test_should_start_probability(self):
        config = Adam2Config(points=4, instance_frequency=1, initial_size_estimate=1.0)
        node = make_node(0, 10.0, config)
        # P_s = 1/(1*1) = 1 -> always starts.
        assert node.should_start_instance()

    def test_bootstrap_from_copies_estimate(self):
        a = make_node(0, 10.0)
        b = make_node(1, 20.0)
        a.start_instance(neighbour_values=np.asarray([5.0, 20.0]), instance_id="x")
        for _ in range(a.config.rounds_per_instance):
            a.end_of_round()
        b.bootstrap_from(a)
        assert b.current_estimate is a.current_estimate
        assert b.size_estimate == a.size_estimate

    def test_refinement_uses_previous_estimate(self):
        rng = make_rng(10)
        values = np.asarray([10.0] * 8 + [100.0] * 8)
        config = Adam2Config(points=4, rounds_per_instance=20, selection="minmax")
        nodes = wire_population(values, config)
        nodes[0].start_instance(neighbour_values=values, instance_id="a")
        for _ in range(21):
            order = rng.permutation(len(nodes))
            for i in order:
                j = int(rng.integers(0, len(nodes) - 1))
                j = j + (j >= i)
                gossip_exchange(nodes[int(i)], nodes[int(j)])
            for node in nodes:
                node.end_of_round()
        # Second instance: thresholds must now anchor at the discovered
        # global extremes.
        iid = nodes[3].start_instance(neighbour_values=values)
        thresholds = nodes[3].instances[iid].h.thresholds
        assert thresholds[0] == 10.0
        assert thresholds[-1] == 100.0
