"""Tests for the threshold-selection heuristics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.rngs import make_rng
from repro.core.cdf import EstimatedCDF
from repro.core.selection import (
    GlobalLCutSelection,
    HCutSelection,
    LCutSelection,
    MinMaxSelection,
    NeighbourBasedSelection,
    UniformSelection,
    canonical_points,
    fill_unique,
    get_selection,
)


@pytest.fixture()
def rng():
    return make_rng(31)


@pytest.fixture()
def smooth_previous():
    """A smooth previous estimate over [0, 100]."""
    thresholds = np.linspace(0, 100, 11)
    return EstimatedCDF(thresholds, thresholds / 100.0, 0.0, 100.0)


@pytest.fixture()
def step_previous():
    """A previous estimate with one huge step at x=50."""
    thresholds = np.asarray([0.0, 49.0, 51.0, 100.0])
    fractions = np.asarray([0.0, 0.05, 0.95, 1.0])
    return EstimatedCDF(thresholds, fractions, 0.0, 100.0)


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("uniform", UniformSelection),
            ("neighbour", NeighbourBasedSelection),
            ("hcut", HCutSelection),
            ("minmax", MinMaxSelection),
            ("lcut", LCutSelection),
            ("lcut_global", GlobalLCutSelection),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(get_selection(name), cls)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_selection("psychic")


class TestFillUnique:
    def test_exact_count(self):
        out = fill_unique(np.asarray([1.0, 5.0]), 5, 0.0, 10.0)
        assert out.size == 5
        assert np.unique(out).size == 5

    def test_sorted(self):
        out = fill_unique(np.asarray([7.0, 1.0, 5.0]), 6, 0.0, 10.0)
        assert np.all(np.diff(out) >= 0)

    def test_within_domain(self):
        out = fill_unique(np.asarray([-5.0, 20.0]), 4, 0.0, 10.0)
        assert out.min() >= 0.0
        assert out.max() <= 10.0

    def test_degenerate_domain(self):
        out = fill_unique(np.asarray([3.0]), 4, 3.0, 3.0)
        assert np.array_equal(out, [3.0] * 4)

    def test_downsamples_excess(self):
        out = fill_unique(np.linspace(0, 10, 100), 5, 0.0, 10.0)
        assert out.size == 5


class TestCanonicalPoints:
    def test_exact_size_passthrough(self, smooth_previous):
        xs, ys = smooth_previous.polyline()
        ts, fs = canonical_points(smooth_previous, xs.size)
        assert np.array_equal(ts, xs)

    def test_trim_keeps_endpoints(self, smooth_previous):
        ts, _ = canonical_points(smooth_previous, 5)
        assert ts.size == 5
        assert ts[0] == 0.0
        assert ts[-1] == 100.0

    def test_grow_bisects_widest_gap(self, step_previous):
        ts, _ = canonical_points(step_previous, 10)
        assert ts.size == 10
        # New points concentrate inside the step gap [49, 51].
        assert ((ts > 49.0) & (ts < 51.0)).sum() >= 3

    def test_too_small_lam_rejected(self, smooth_previous):
        with pytest.raises(ConfigurationError):
            canonical_points(smooth_previous, 1)


class TestUniform:
    def test_even_spacing_from_previous(self, smooth_previous, rng):
        out = UniformSelection().select(5, smooth_previous, rng)
        assert np.allclose(np.diff(out), 25.0)

    def test_from_neighbour_values(self, rng):
        out = UniformSelection().select(3, None, rng, neighbour_values=np.asarray([10.0, 30.0]))
        assert np.array_equal(out, [10.0, 20.0, 30.0])

    def test_no_context_rejected(self, rng):
        with pytest.raises(EstimationError):
            UniformSelection().select(3, None, rng)


class TestNeighbour:
    def test_thresholds_from_neighbour_values(self, rng):
        values = np.asarray([100.0, 200.0, 300.0, 400.0, 500.0])
        out = NeighbourBasedSelection().select(3, None, rng, neighbour_values=values)
        assert out.size == 3
        assert set(out) <= set(values)

    def test_fills_when_few_values(self, rng):
        out = NeighbourBasedSelection().select(5, None, rng, neighbour_values=np.asarray([1.0, 9.0]))
        assert out.size == 5
        assert np.unique(out).size == 5

    def test_requires_values(self, rng):
        with pytest.raises(EstimationError):
            NeighbourBasedSelection().select(3, None, rng)


class TestHCut:
    def test_equal_quantiles_on_smooth(self, smooth_previous, rng):
        out = HCutSelection().select(5, smooth_previous, rng)
        fractions = smooth_previous.evaluate(out)
        assert np.allclose(np.diff(fractions), 0.25, atol=0.05)

    def test_requires_previous(self, rng):
        with pytest.raises(EstimationError):
            HCutSelection().select(5, None, rng)

    def test_count_and_uniqueness(self, step_previous, rng):
        out = HCutSelection().select(8, step_previous, rng)
        assert out.size == 8
        assert np.unique(out).size == 8


class TestMinMax:
    def test_concentrates_on_step(self, step_previous, rng):
        out = MinMaxSelection().select(8, step_previous, rng)
        # Most of the vertical action is between 49 and 51.
        assert ((out >= 48.0) & (out <= 52.0)).sum() >= 3

    def test_keeps_endpoints(self, step_previous, rng):
        out = MinMaxSelection().select(8, step_previous, rng)
        assert out[0] == 0.0
        assert out[-1] == 100.0

    def test_noop_when_already_balanced(self, rng):
        # A perfectly linear previous estimate has all gaps equal; the
        # loop must terminate immediately and keep the points.
        thresholds = np.linspace(0, 100, 6)
        previous = EstimatedCDF(thresholds, thresholds / 100.0, 0.0, 100.0)
        out = MinMaxSelection().select(6, previous, rng)
        assert np.allclose(out, thresholds)

    def test_requires_previous(self, rng):
        with pytest.raises(EstimationError):
            MinMaxSelection().select(5, None, rng)

    def test_returns_requested_count(self, step_previous, rng):
        for lam in (4, 8, 16):
            assert MinMaxSelection().select(lam, step_previous, rng).size == lam


class TestLCut:
    def test_concentrates_on_step(self, step_previous, rng):
        out = LCutSelection().select(10, step_previous, rng)
        # The step carries ~90% of the arc length -> most points near it.
        assert ((out >= 48.0) & (out <= 52.0)).sum() >= 4

    def test_even_arc_on_diagonal(self, rng):
        thresholds = np.linspace(0, 100, 5)
        previous = EstimatedCDF(thresholds, thresholds / 100.0, 0.0, 100.0)
        out = LCutSelection().select(5, previous, rng)
        assert np.allclose(np.diff(out), 25.0, atol=1.0)

    def test_requires_previous(self, rng):
        with pytest.raises(EstimationError):
            LCutSelection().select(5, None, rng)

    def test_degenerate_domain(self, rng):
        previous = EstimatedCDF(np.asarray([5.0]), np.asarray([1.0]), 5.0, 5.0)
        out = LCutSelection().select(3, previous, rng)
        assert np.array_equal(out, [5.0] * 3)


class TestGlobalLCut:
    def test_count(self, step_previous, rng):
        out = GlobalLCutSelection().select(10, step_previous, rng)
        assert out.size == 10

    def test_requires_previous(self, rng):
        with pytest.raises(EstimationError):
            GlobalLCutSelection().select(5, None, rng)
