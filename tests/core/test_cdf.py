"""Tests for EmpiricalCDF and EstimatedCDF."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.core.cdf import EmpiricalCDF, EstimatedCDF


class TestEmpiricalCDF:
    def test_basic_evaluation(self):
        cdf = EmpiricalCDF(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4.0) == 1.0
        assert cdf.evaluate(100.0) == 1.0

    def test_le_semantics_at_atoms(self, step_values):
        cdf = EmpiricalCDF(step_values)
        # F counts values at-or-below x (paper §III definition).
        assert cdf.evaluate(100.0) == pytest.approx(0.3)
        assert cdf.evaluate(99.999) == 0.0
        assert cdf.evaluate(200.0) == pytest.approx(0.8)

    def test_extremes(self, step_values):
        cdf = EmpiricalCDF(step_values)
        assert cdf.minimum == 100.0
        assert cdf.maximum == 800.0

    def test_quantile_inverse_relationship(self, step_values):
        cdf = EmpiricalCDF(step_values)
        assert cdf.quantile(0.3)[0] == 100.0
        assert cdf.quantile(0.31)[0] == 200.0
        assert cdf.quantile(0.0)[0] == 100.0
        assert cdf.quantile(1.0)[0] == 800.0

    def test_quantile_bounds(self, step_truth):
        with pytest.raises(EstimationError):
            step_truth.quantile(1.5)

    def test_vectorised_evaluation(self, step_truth):
        xs = np.asarray([50.0, 150.0, 850.0])
        out = step_truth.evaluate(xs)
        assert out.shape == (3,)
        assert np.all(np.diff(out) >= 0)

    def test_support(self, step_values):
        assert np.array_equal(EmpiricalCDF(step_values).support(), [100.0, 200.0, 400.0, 800.0])

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            EmpiricalCDF(np.asarray([]))

    def test_non_finite_rejected(self):
        with pytest.raises(EstimationError):
            EmpiricalCDF(np.asarray([1.0, np.inf]))

    def test_callable(self, step_truth):
        assert step_truth(200.0) == step_truth.evaluate(200.0)

    def test_size(self, step_values):
        assert EmpiricalCDF(step_values).size == step_values.size


class TestEstimatedCDF:
    def test_exact_at_points(self, step_truth, perfect_estimate):
        thresholds = perfect_estimate.thresholds
        assert np.allclose(perfect_estimate.evaluate(thresholds), step_truth.evaluate(thresholds))

    def test_boundary_semantics(self, perfect_estimate):
        assert perfect_estimate.evaluate(99.0) == 0.0
        assert perfect_estimate.evaluate(800.0) == 1.0
        assert perfect_estimate.evaluate(10_000.0) == 1.0

    def test_linear_between_points(self):
        est = EstimatedCDF(np.asarray([0.0, 10.0]), np.asarray([0.0, 1.0]), 0.0, 10.0)
        assert est.evaluate(5.0) == pytest.approx(0.5)
        assert est.evaluate(2.5) == pytest.approx(0.25)

    def test_monotone_despite_noisy_fractions(self):
        est = EstimatedCDF(
            np.asarray([1.0, 2.0, 3.0]), np.asarray([0.5, 0.4, 0.9]), 0.0, 4.0
        )
        grid = np.linspace(0, 4, 101)
        assert np.all(np.diff(est.evaluate(grid)) >= -1e-12)

    def test_fractions_clamped(self):
        est = EstimatedCDF(np.asarray([1.0, 2.0]), np.asarray([-0.2, 1.4]), 0.0, 3.0)
        values = est.evaluate(np.linspace(0, 3, 50))
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_quantile_roundtrip_on_polyline(self):
        est = EstimatedCDF(np.asarray([0.0, 10.0]), np.asarray([0.0, 1.0]), 0.0, 10.0)
        for q in (0.1, 0.5, 0.9):
            x = est.quantile(q)[0]
            assert est.evaluate(x) == pytest.approx(q, abs=1e-9)

    def test_quantile_extremes(self, perfect_estimate):
        assert perfect_estimate.quantile(0.0)[0] == perfect_estimate.minimum
        assert perfect_estimate.quantile(1.0)[0] == perfect_estimate.maximum

    def test_quantile_bounds(self, perfect_estimate):
        with pytest.raises(EstimationError):
            perfect_estimate.quantile(-0.1)

    def test_unsorted_threshold_input(self):
        est = EstimatedCDF(np.asarray([3.0, 1.0, 2.0]), np.asarray([0.9, 0.1, 0.5]), 0.0, 4.0)
        assert est.evaluate(1.0) == pytest.approx(0.1)
        assert est.evaluate(3.0) == pytest.approx(0.9)

    def test_system_size_carried(self):
        est = EstimatedCDF(np.asarray([1.0]), np.asarray([0.5]), 0.0, 2.0, system_size=123.0)
        assert est.system_size == 123.0

    def test_from_interpolation(self):
        from repro.core.interpolation import InterpolationSet

        h = InterpolationSet.from_indicator(5.0, np.asarray([1.0, 10.0]))
        est = EstimatedCDF.from_interpolation(h)
        assert est.minimum == 5.0
        assert est.evaluate(10.0) == 1.0

    def test_polyline_returns_copies(self, perfect_estimate):
        xs, ys = perfect_estimate.polyline()
        xs[0] = -999.0
        xs2, _ = perfect_estimate.polyline()
        assert xs2[0] != -999.0
