"""Tests for size estimation helpers and the multi-value scheme."""

import numpy as np
import pytest

from repro.errors import EstimationError, ProtocolError
from repro.core.multivalue import MultiValueState, multivalue_fractions
from repro.core.sizing import size_from_weight


class TestSizeFromWeight:
    def test_inverse(self):
        assert size_from_weight(0.01) == pytest.approx(100.0)

    def test_unit_weight(self):
        assert size_from_weight(1.0) == 1.0

    @pytest.mark.parametrize("weight", [0.0, -0.5])
    def test_non_positive_rejected(self, weight):
        with pytest.raises(EstimationError):
            size_from_weight(weight)


class TestMultiValueFractions:
    def test_ratio(self):
        out = multivalue_fractions(np.asarray([1.0, 2.0, 4.0]), 4.0)
        assert np.array_equal(out, [0.25, 0.5, 1.0])

    def test_zero_total_rejected(self):
        with pytest.raises(ProtocolError):
            multivalue_fractions(np.asarray([1.0]), 0.0)


class TestMultiValueState:
    def test_from_values_counts(self):
        state = MultiValueState.from_values(
            np.asarray([1.0, 5.0, 9.0]), np.asarray([2.0, 6.0, 10.0])
        )
        assert np.array_equal(state.counts, [1.0, 2.0, 3.0])
        assert state.total == 3.0

    def test_merge_averages(self):
        a = MultiValueState.from_values(np.asarray([1.0]), np.asarray([2.0, 6.0]))
        b = MultiValueState.from_values(np.asarray([5.0, 7.0]), np.asarray([2.0, 6.0]))
        a.merge(b)
        assert np.array_equal(a.counts, [0.5, 1.0])
        assert a.total == 1.5

    def test_merge_shape_mismatch(self):
        a = MultiValueState.from_values(np.asarray([1.0]), np.asarray([2.0]))
        b = MultiValueState.from_values(np.asarray([1.0]), np.asarray([2.0, 3.0]))
        with pytest.raises(ProtocolError):
            a.merge(b)

    def test_empty_values_rejected(self):
        with pytest.raises(ProtocolError):
            MultiValueState.from_values(np.asarray([]), np.asarray([1.0]))

    def test_fractions_converge_to_population_cdf(self):
        """Pairwise merging many states approaches the file-level CDF."""
        rng = np.random.default_rng(3)
        thresholds = np.asarray([100.0, 500.0])
        value_sets = [rng.uniform(0, 1000, size=rng.integers(1, 6)) for _ in range(32)]
        states = [MultiValueState.from_values(v, thresholds) for v in value_sets]
        for _ in range(800):
            i, j = rng.choice(len(states), size=2, replace=False)
            snapshot = MultiValueState(states[i].counts.copy(), states[i].total)
            states[i].merge(states[j])
            states[j].merge(snapshot)
        all_values = np.concatenate(value_sets)
        expected = [(all_values <= t).mean() for t in thresholds]
        for state in states:
            assert np.allclose(state.fractions(), expected, atol=1e-3)
