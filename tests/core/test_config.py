"""Tests for Adam2Config validation and the wire-size model."""

import pytest

from repro.errors import ConfigurationError
from repro.core.config import Adam2Config


class TestValidation:
    def test_defaults_valid(self):
        config = Adam2Config()
        assert config.points == 50
        assert config.rounds_per_instance == 25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"points": 1},
            {"rounds_per_instance": 0},
            {"instance_frequency": 0},
            {"selection": "magic"},
            {"bootstrap": "oracle"},
            {"verification_points": -1},
            {"verification_target": "median"},
            {"join_mode": "casual"},
            {"initial_size_estimate": 0},
            {"point_bytes": 0},
            {"header_bytes": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Adam2Config(**kwargs)

    @pytest.mark.parametrize("selection", ["hcut", "minmax", "lcut", "lcut_global"])
    def test_all_selections_accepted(self, selection):
        assert Adam2Config(selection=selection).selection == selection

    def test_frozen(self):
        config = Adam2Config()
        with pytest.raises(Exception):
            config.points = 10


class TestMessageBytes:
    def test_paper_figure(self):
        # λ=50 at 16 bytes per pair -> ~800-byte messages (§VII-I).
        config = Adam2Config(points=50)
        assert 800 <= config.message_bytes() <= 850

    def test_scales_with_points(self):
        small = Adam2Config(points=10).message_bytes()
        large = Adam2Config(points=20).message_bytes()
        assert large - small == 10 * 16  # paper: 10 extra points ≈ 160 B

    def test_verification_points_add_size(self):
        base = Adam2Config(points=50).message_bytes()
        with_v = Adam2Config(points=50, verification_points=20).message_bytes()
        assert with_v == base + 20 * 16
