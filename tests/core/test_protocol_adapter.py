"""Tests for the Adam2Protocol engine adapter."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.rngs import make_rng
from repro.core.config import Adam2Config
from repro.core.protocol import Adam2Protocol
from repro.simulation.runner import build_engine
from repro.workloads.synthetic import uniform_workload


def make_engine(n=60, scheduler="manual", config=None, seed=0, **engine_kwargs):
    config = config or Adam2Config(points=8, rounds_per_instance=10)
    protocol = Adam2Protocol(config, scheduler=scheduler)
    engine = build_engine(
        uniform_workload(0, 1000), n, [protocol], make_rng(seed), **engine_kwargs
    )
    return engine, protocol


class TestLifecycle:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Adam2Protocol(Adam2Config(), scheduler="astrology")

    def test_trigger_and_complete(self):
        engine, protocol = make_engine()
        iid = protocol.trigger_instance(engine)
        assert iid in protocol.started_instances
        assert protocol.active_instance_count(engine) >= 1
        engine.run(11)
        assert protocol.active_instance_count(engine) == 0
        assert len(protocol.estimates(engine)) == 60

    def test_estimates_include_undefined(self):
        engine, protocol = make_engine()
        out = protocol.estimates(engine, include_undefined=True)
        assert len(out) == 60
        assert all(e is None for e in out)

    def test_exchange_empty_is_free(self):
        engine, protocol = make_engine()
        engine.run(3)  # no instance running
        assert engine.network.summary(60).bytes_total == 0

    def test_bytes_proportional_to_active_instances(self):
        engine, protocol = make_engine()
        protocol.trigger_instance(engine)
        engine.run(2)
        protocol.trigger_instance(engine)
        engine.run(4)  # let the second instance spread epidemically
        before = engine.network.summary(60).bytes_total
        engine.run(1)
        per_round = engine.network.summary(60).bytes_total - before
        # Two concurrent instances cost roughly twice one instance.
        single = 2 * 60 * protocol.config.message_bytes()
        assert per_round > 1.5 * single

    def test_values_refreshed_at_instance_start(self):
        engine, protocol = make_engine()
        node = engine.random_node()
        node.values = np.asarray([123456.0])
        protocol.trigger_instance(engine, node=node)
        engine.run(11)
        adam2 = node.state[protocol.name]
        # The refreshed value ends up as the tracked global maximum.
        assert adam2.current_estimate.maximum == 123456.0


class TestNeighbourValues:
    def test_sample_bounded(self):
        config = Adam2Config(points=8, rounds_per_instance=10)
        protocol = Adam2Protocol(config, scheduler="manual", neighbour_sample=5)
        engine = build_engine(uniform_workload(0, 10), 40, [protocol], make_rng(1))
        node = engine.random_node()
        values = protocol._neighbour_values(node, engine)
        assert values.size <= 5

    def test_isolated_node_uses_own_values(self):
        engine, protocol = make_engine(n=3, overlay="random", degree=1)
        node = engine.random_node()
        engine.overlay._links[node.node_id] = []  # cut all links
        values = protocol._neighbour_values(node, engine)
        assert values.size >= 1


class TestLossyEngine:
    def test_loss_slows_but_does_not_break(self):
        engine, protocol = make_engine(n=80, loss_rate=0.3)
        protocol.trigger_instance(engine)
        engine.run(12)
        assert engine.exchanges_lost > 0
        assert len(protocol.estimates(engine)) >= 70

    def test_invalid_loss_rate(self):
        with pytest.raises(SimulationError):
            make_engine(loss_rate=1.0)


def make_engine_with_loss_kwarg(**kwargs):
    # helper used above via build_engine passthrough
    return make_engine(**kwargs)
