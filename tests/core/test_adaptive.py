"""Tests for the confidence-driven accuracy controller."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.adaptive import AccuracyController, TuningDecision
from repro.core.config import Adam2Config
from repro.fastsim.adam2 import Adam2Simulation
from repro.workloads import boinc_ram_mb


def make_config(points=20):
    return Adam2Config(
        points=points, rounds_per_instance=25, selection="lcut",
        verification_points=15, verification_target="average",
    )


class TestDecisions:
    def test_stop_when_target_met(self):
        controller = AccuracyController(target=0.01)
        decision = controller.decide(make_config(), 0.005)
        assert decision.action == "stop"
        assert decision.config.points == 20

    def test_refine_while_improving(self):
        controller = AccuracyController(target=1e-4, patience=2)
        first = controller.decide(make_config(), 0.1)
        assert first.action == "refine"
        second = controller.decide(make_config(), 0.04)  # big improvement
        assert second.action == "refine"

    def test_grow_on_plateau(self):
        controller = AccuracyController(target=1e-4, patience=2)
        first = controller.decide(make_config(), 0.1)
        assert first.action == "refine"
        # Plateau (< 30 % improvement) with patience spent -> grow.
        decision = controller.decide(make_config(), 0.095)
        assert decision.action == "grow"
        assert decision.config.points == 40

    def test_growth_capped(self):
        controller = AccuracyController(target=1e-9, max_points=25, patience=1)
        config = make_config(20)
        controller.decide(config, 0.1)
        decision = controller.decide(config, 0.099)
        assert decision.config.points <= 25

    def test_no_grow_at_cap(self):
        controller = AccuracyController(target=1e-9, max_points=20, patience=1)
        config = make_config(20)
        controller.decide(config, 0.1)
        decision = controller.decide(config, 0.0999)
        assert decision.action == "refine"

    def test_reset(self):
        controller = AccuracyController(target=1e-4, patience=1)
        controller.decide(make_config(), 0.1)
        controller.reset()
        decision = controller.decide(make_config(), 0.099)
        assert decision.action == "refine"  # plateau history forgotten

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AccuracyController(target=0.0)
        with pytest.raises(ConfigurationError):
            AccuracyController(target=0.1, max_points=1)
        with pytest.raises(ConfigurationError):
            AccuracyController(target=0.1, growth_factor=1.0)
        with pytest.raises(ConfigurationError):
            AccuracyController(target=0.1, patience=0)
        controller = AccuracyController(target=0.1)
        with pytest.raises(ConfigurationError):
            controller.decide(Adam2Config(points=10), 0.5)  # no verification
        with pytest.raises(ConfigurationError):
            controller.decide(make_config(), -0.1)


class TestClosedLoop:
    def test_tunes_until_target(self):
        """The full loop: simulate, self-assess, let the controller steer."""
        target = 2e-3
        controller = AccuracyController(target=target, max_points=120, patience=2)
        config = make_config(10)
        sim = Adam2Simulation(boinc_ram_mb(), 600, config, seed=9)
        final_estimate = None
        for _ in range(10):
            result = sim.run_instance(confidence_sample=32)
            self_assessed = float(np.mean(result.est_erra))
            decision = controller.decide(sim.config, self_assessed)
            final_estimate = self_assessed
            if decision.action == "stop":
                break
            if decision.config is not sim.config:
                sim.config = decision.config
        assert final_estimate is not None
        assert decision.action == "stop" or sim.config.points > 10
