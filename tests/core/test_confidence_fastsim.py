"""Confidence estimation behaviour on full simulations (§VI / Fig. 14)."""

import numpy as np
import pytest

from repro.core.config import Adam2Config
from repro.fastsim.adam2 import Adam2Simulation
from repro.metrics.estimation import confidence_estimation_error
from repro.workloads import boinc_ram_mb
from repro.workloads.synthetic import lognormal_workload


def run_with_verification(target: str, v_points: int, instances: int = 3, n=500, seed=11):
    config = Adam2Config(
        points=30, rounds_per_instance=30, selection="minmax",
        verification_points=v_points, verification_target=target,
    )
    sim = Adam2Simulation(boinc_ram_mb(), n, config, seed=seed)
    result = None
    for _ in range(instances):
        result = sim.run_instance(confidence_sample=40)
    return result


class TestVerificationAggregation:
    def test_verification_fractions_converge(self):
        result = run_with_verification("average", 10, instances=1)
        truth_at_v = result.truth.evaluate(result.v_thresholds)
        joined = result.joined & result.participants
        residual = np.abs(result.v_fractions[joined] - truth_at_v[None, :])
        assert residual.max() < 1e-5  # near-exact, like the H points

    def test_average_target_estimates_reasonably(self):
        result = run_with_verification("average", 40)
        rel = confidence_estimation_error(result.true_erra, result.est_erra)
        assert rel < 1.0  # same order of magnitude (paper: ~10 % at 20+ pts)

    def test_maximum_target_is_harder(self):
        """EstErr_m is intrinsically rough (single-point property) but
        must stay within a small factor of the truth on average."""
        result = run_with_verification("maximum", 60)
        ratio = np.mean(result.est_errm) / np.mean(result.true_errm)
        assert 0.05 < ratio < 2.5

    def test_estimates_underestimate_with_few_points(self):
        """With very few verification points most land where the
        interpolation is exact, so the self-assessment is optimistic."""
        few = run_with_verification("average", 5)
        many = run_with_verification("average", 80)
        assert np.mean(few.est_erra) <= np.mean(many.est_erra) * 1.5

    def test_verification_points_excluded_from_interpolation(self):
        result = run_with_verification("average", 10, instances=1)
        assert result.thresholds.size == 30
        assert result.v_thresholds.size == 10
        # No verification threshold leaks into the interpolation set.
        assert not np.intersect1d(result.thresholds, result.v_thresholds).size == 40


class TestSmoothWorkloadConfidence:
    def test_smooth_cdf_self_assessment_tight(self):
        config = Adam2Config(
            points=30, rounds_per_instance=30, selection="lcut",
            verification_points=30, verification_target="average",
        )
        sim = Adam2Simulation(lognormal_workload(median=300.0, sigma=0.6), 500, config, seed=12)
        result = None
        for _ in range(3):
            result = sim.run_instance(confidence_sample=40)
        rel = confidence_estimation_error(result.true_erra, result.est_erra)
        assert rel < 0.8
