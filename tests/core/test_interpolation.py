"""Tests for the H structure and interpolation kernels."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.core.interpolation import InterpolationSet, assemble_polyline, interpolate_matrix


class TestAssemblePolyline:
    def test_anchors_added(self):
        xs, ys = assemble_polyline(np.asarray([5.0]), np.asarray([0.4]), 0.0, 10.0)
        assert xs[0] == 0.0 and ys[0] == 0.0
        assert xs[-1] == 10.0 and ys[-1] == 1.0

    def test_no_anchor_when_threshold_at_extreme(self):
        xs, ys = assemble_polyline(np.asarray([0.0, 10.0]), np.asarray([0.1, 1.0]), 0.0, 10.0)
        assert xs[0] == 0.0 and ys[0] == pytest.approx(0.1)
        assert xs.size == 2

    def test_duplicate_thresholds_keep_max_fraction(self):
        xs, ys = assemble_polyline(
            np.asarray([5.0, 5.0, 7.0]), np.asarray([0.2, 0.6, 0.8]), 0.0, 10.0
        )
        idx = np.flatnonzero(xs == 5.0)
        assert idx.size == 1
        assert ys[idx[0]] == pytest.approx(0.6)

    def test_monotone_enforced(self):
        _, ys = assemble_polyline(
            np.asarray([1.0, 2.0, 3.0]), np.asarray([0.5, 0.3, 0.9]), 0.0, 4.0
        )
        assert np.all(np.diff(ys) >= 0)

    def test_monotone_disabled(self):
        _, ys = assemble_polyline(
            np.asarray([1.0, 2.0, 3.0]), np.asarray([0.5, 0.3, 0.9]), 0.0, 4.0, monotone=False
        )
        assert ys[2] == pytest.approx(0.3)

    def test_empty_thresholds(self):
        xs, ys = assemble_polyline(np.asarray([]), np.asarray([]), 2.0, 8.0)
        assert np.array_equal(xs, [2.0, 8.0])
        assert np.array_equal(ys, [0.0, 1.0])

    def test_invalid_extremes(self):
        with pytest.raises(ProtocolError):
            assemble_polyline(np.asarray([1.0]), np.asarray([0.5]), 5.0, 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ProtocolError):
            assemble_polyline(np.asarray([1.0, 2.0]), np.asarray([0.5]), 0.0, 3.0)


class TestInterpolationSet:
    def test_from_indicator(self):
        h = InterpolationSet.from_indicator(5.0, np.asarray([1.0, 5.0, 10.0]))
        assert np.array_equal(h.fractions, [0.0, 1.0, 1.0])
        assert h.minimum == 5.0
        assert h.maximum == 5.0

    def test_from_indicator_sorts_thresholds(self):
        h = InterpolationSet.from_indicator(5.0, np.asarray([10.0, 1.0]))
        assert np.array_equal(h.thresholds, [1.0, 10.0])

    def test_copy_is_independent(self):
        h = InterpolationSet.from_indicator(5.0, np.asarray([1.0, 10.0]))
        clone = h.copy()
        clone.fractions[0] = 0.7
        assert h.fractions[0] == 0.0

    def test_len(self):
        h = InterpolationSet.from_indicator(5.0, np.asarray([1.0, 10.0]))
        assert len(h) == 2

    def test_evaluate_below_and_above(self):
        h = InterpolationSet(
            thresholds=np.asarray([2.0, 8.0]),
            fractions=np.asarray([0.25, 0.75]),
            minimum=0.0,
            maximum=10.0,
        )
        assert h.evaluate(np.asarray([-1.0]))[0] == 0.0
        assert h.evaluate(np.asarray([10.0]))[0] == 1.0
        assert h.evaluate(np.asarray([5.0]))[0] == pytest.approx(0.5)


class TestInterpolateMatrix:
    def _setup(self):
        thresholds = np.asarray([2.0, 8.0])
        fractions = np.asarray([[0.25, 0.75], [0.2, 0.8]])
        minimum = np.asarray([0.0, 0.0])
        maximum = np.asarray([10.0, 10.0])
        return thresholds, fractions, minimum, maximum

    def test_matches_scalar_interpolation(self):
        thresholds, fractions, minimum, maximum = self._setup()
        query = np.asarray([-1.0, 0.0, 1.0, 2.0, 5.0, 8.0, 9.0, 10.0, 11.0])
        out = interpolate_matrix(thresholds, fractions, minimum, maximum, query)
        for row in range(2):
            h = InterpolationSet(
                thresholds=thresholds,
                fractions=fractions[row],
                minimum=minimum[row],
                maximum=maximum[row],
            )
            assert np.allclose(out[row], h.evaluate(query), atol=1e-12)

    def test_shape(self):
        thresholds, fractions, minimum, maximum = self._setup()
        out = interpolate_matrix(thresholds, fractions, minimum, maximum, np.asarray([3.0]))
        assert out.shape == (2, 1)

    def test_monotone_rows(self):
        thresholds = np.asarray([1.0, 2.0, 3.0])
        fractions = np.asarray([[0.5, 0.2, 0.9]])
        out = interpolate_matrix(
            thresholds, fractions, np.asarray([0.0]), np.asarray([4.0]), np.linspace(0, 4, 50)
        )
        assert np.all(np.diff(out[0]) >= -1e-12)

    def test_unsorted_thresholds_rejected(self):
        with pytest.raises(ProtocolError):
            interpolate_matrix(
                np.asarray([3.0, 1.0]),
                np.asarray([[0.1, 0.9]]),
                np.asarray([0.0]),
                np.asarray([4.0]),
                np.asarray([2.0]),
            )

    def test_bad_fraction_shape_rejected(self):
        with pytest.raises(ProtocolError):
            interpolate_matrix(
                np.asarray([1.0, 2.0]),
                np.asarray([[0.1]]),
                np.asarray([0.0]),
                np.asarray([4.0]),
                np.asarray([2.0]),
            )

    def test_per_node_extremes(self):
        thresholds = np.asarray([5.0])
        fractions = np.asarray([[0.5], [0.5]])
        minimum = np.asarray([0.0, 4.0])
        maximum = np.asarray([10.0, 6.0])
        out = interpolate_matrix(thresholds, fractions, minimum, maximum, np.asarray([2.0, 6.0]))
        assert out[0, 0] > 0.0  # node 0's domain starts at 0
        assert out[1, 0] == 0.0  # node 1's domain starts at 4
        assert out[1, 1] == 1.0  # node 1's domain ends at 6
