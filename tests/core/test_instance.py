"""Tests for per-node instance state."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.core.instance import InstanceState


def make_state(value=5.0, thresholds=(1.0, 5.0, 10.0), initiator=False, ttl=25, v_thresholds=()):
    return InstanceState.initial(
        instance_id="i1",
        values=np.atleast_1d(np.asarray(value, dtype=float)),
        thresholds=np.asarray(thresholds, dtype=float),
        v_thresholds=np.asarray(v_thresholds, dtype=float),
        ttl=ttl,
        initiator=initiator,
    )


class TestInitial:
    def test_indicator_fractions(self):
        state = make_state(value=5.0)
        assert np.array_equal(state.h.fractions, [0.0, 1.0, 1.0])

    def test_initiator_weight(self):
        assert make_state(initiator=True).weight == 1.0
        assert make_state(initiator=False).weight == 0.0

    def test_extremes_are_own_value(self):
        state = make_state(value=5.0)
        assert state.h.minimum == 5.0
        assert state.h.maximum == 5.0

    def test_multivalue_counts(self):
        state = make_state(value=[2.0, 6.0, 7.0])
        # counts at thresholds 1, 5, 10: 0, 1, 3
        assert np.array_equal(state.h.fractions, [0.0, 1.0, 3.0])
        assert state.count_average == 3.0
        assert state.h.minimum == 2.0
        assert state.h.maximum == 7.0

    def test_verification_counts(self):
        state = make_state(value=5.0, v_thresholds=(4.0, 6.0))
        assert np.array_equal(state.v_fractions, [0.0, 1.0])

    def test_empty_values_rejected(self):
        with pytest.raises(ProtocolError):
            make_state(value=np.asarray([]))

    def test_negative_ttl_rejected(self):
        with pytest.raises(ProtocolError):
            make_state(ttl=-1)


class TestMerge:
    def test_averages_fractions_and_weight(self):
        a = make_state(value=0.5, initiator=True)   # below all thresholds
        b = make_state(value=20.0)                  # above all thresholds
        a.merge_from(b)
        assert np.array_equal(a.h.fractions, [0.5, 0.5, 0.5])
        assert a.weight == 0.5

    def test_extremes_min_max(self):
        a = make_state(value=2.0)
        b = make_state(value=9.0)
        a.merge_from(b)
        assert a.h.minimum == 2.0
        assert a.h.maximum == 9.0

    def test_ttl_not_merged(self):
        a = make_state(ttl=25)
        b = make_state(ttl=10)
        a.merge_from(b)
        assert a.ttl == 25  # each peer counts down its own copy

    def test_different_instances_rejected(self):
        a = make_state()
        b = make_state()
        b.instance_id = "other"
        with pytest.raises(ProtocolError):
            a.merge_from(b)

    def test_diverged_thresholds_rejected(self):
        a = make_state()
        b = make_state(thresholds=(2.0, 5.0, 10.0))
        with pytest.raises(ProtocolError):
            a.merge_from(b)

    def test_symmetric_exchange_conserves_mass(self):
        a = make_state(value=0.5, initiator=True)
        b = make_state(value=20.0)
        total_before = a.h.fractions + b.h.fractions
        snap = a.snapshot()
        a.merge_from(b)
        b.merge_from(snap)
        assert np.allclose(a.h.fractions + b.h.fractions, total_before)
        assert a.weight + b.weight == pytest.approx(1.0)


class TestSnapshot:
    def test_snapshot_is_deep_for_arrays(self):
        state = make_state()
        snap = state.snapshot()
        snap.h.fractions[0] = 0.77
        assert state.h.fractions[0] != 0.77


class TestNormalisation:
    def test_single_value_division_is_identity(self):
        state = make_state(value=5.0)
        assert np.array_equal(state.normalised_fractions(), state.h.fractions)

    def test_multivalue_division(self):
        state = make_state(value=[2.0, 6.0, 7.0])
        assert np.allclose(state.normalised_fractions(), [0.0, 1 / 3, 1.0])

    def test_zero_count_rejected(self):
        state = make_state()
        state.count_average = 0.0
        with pytest.raises(ProtocolError):
            state.normalised_fractions()
        with pytest.raises(ProtocolError):
            state.normalised_v_fractions()
