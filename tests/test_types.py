"""Tests for shared value objects."""

import math

import pytest

from repro.types import ErrorPair, Point


class TestPoint:
    def test_fields(self):
        p = Point(threshold=10.0, fraction=0.5)
        assert p.threshold == 10.0
        assert p.fraction == 0.5

    def test_frozen(self):
        p = Point(1.0, 0.1)
        with pytest.raises(AttributeError):
            p.fraction = 0.2

    def test_nan_fraction_rejected(self):
        with pytest.raises(ValueError):
            Point(1.0, math.nan)


class TestErrorPair:
    def test_unpacking(self):
        maximum, average = ErrorPair(maximum=0.2, average=0.01)
        assert maximum == 0.2
        assert average == 0.01

    def test_equality(self):
        assert ErrorPair(0.1, 0.01) == ErrorPair(0.1, 0.01)
