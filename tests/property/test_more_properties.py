"""Further property-based tests: async events, drift, views, state arrays."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.asyncsim.events import EventQueue
from repro.fastsim.state import InstanceArrays
from repro.fastsim.exchange import matching_round, sequential_round
from repro.overlay.view import NodeDescriptor, PartialView
from repro.rngs import make_rng
from repro.workloads.dynamic import DriftModel


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time(self, times):
        queue = EventQueue()
        fired: list[float] = []
        for t in times:
            queue.schedule(t, (lambda at: (lambda: fired.append(at)))(t))
        queue.run_until(max(times))
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_deadline_splits_events_exactly(self, times, deadline):
        queue = EventQueue()
        for t in times:
            queue.schedule(t, lambda: None)
        fired = queue.run_until(deadline)
        assert fired == sum(1 for t in times if t <= deadline)


class TestDriftProperties:
    @given(
        arrays(np.float64, st.integers(2, 40), elements=st.floats(1, 1e6, allow_nan=False)),
        st.floats(min_value=-0.4, max_value=0.4, allow_nan=False),
    )
    def test_growth_preserves_order(self, values, rate):
        model = DriftModel(growth_per_round=rate)
        out = model.apply(values, make_rng(0))
        # Multiplicative growth is a monotone map: it preserves weak order.
        # (Strict argsort equality is too strong — values a few ulps apart
        # can collapse to the same float after scaling.)
        assert np.all(np.diff(out[np.argsort(values, kind="stable")]) >= 0)

    @given(arrays(np.float64, st.integers(2, 40), elements=st.floats(1, 1e6, allow_nan=False)))
    def test_static_model_is_identity(self, values):
        out = DriftModel().apply(values, make_rng(0))
        assert np.array_equal(out, values)


class TestPartialViewProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.lists(st.tuples(st.integers(0, 30), st.integers(0, 20)), min_size=0, max_size=60),
    )
    def test_capacity_and_uniqueness_invariants(self, capacity, inserts):
        view = PartialView(capacity)
        for node_id, age in inserts:
            view.insert(NodeDescriptor(node_id, age))
        assert len(view) <= capacity
        ids = view.node_ids()
        assert len(ids) == len(set(ids))
        # Every held descriptor is the freshest ever inserted for its id
        # among those that could have survived truncation.
        for d in view.descriptors():
            best = min(age for node_id, age in inserts if node_id == d.node_id)
            assert d.age >= best or d.age == best


class TestInstanceArraysProperties:
    @given(
        arrays(np.float64, st.integers(2, 40), elements=st.floats(0, 1e4, allow_nan=False)),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_kernels_preserve_conserved_mass(self, values, k, seed):
        thresholds = np.linspace(values.min(), values.max() + 1, k)
        arrays_state = InstanceArrays.create(values, thresholds)
        before = arrays_state.conserved_mass()
        rng = make_rng(seed)
        kernel = sequential_round if seed % 2 == 0 else matching_round
        for _ in range(5):
            kernel(arrays_state.averaged, arrays_state.extremes, arrays_state.joined, rng)
        assert np.allclose(arrays_state.conserved_mass(), before)

    @given(
        arrays(np.float64, st.integers(4, 40), elements=st.floats(0, 1e4, allow_nan=False)),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_extremes_never_shrink(self, values, seed):
        thresholds = np.linspace(values.min(), values.max() + 1, 3)
        state = InstanceArrays.create(values, thresholds)
        rng = make_rng(seed)
        for _ in range(8):
            sequential_round(state.averaged, state.extremes, state.joined, rng)
        assert (state.extremes[:, 0] >= values.min()).all()
        assert (state.extremes[:, 1] <= values.max()).all()
        assert (state.extremes[:, 0] <= state.extremes[:, 1]).all()
