"""Property-based tests (hypothesis) on the core data structures.

Invariants covered:

* empirical CDFs are monotone, bounded, right-continuous step functions
  with a Galois connection to their quantile function;
* estimated CDFs are monotone and bounded for arbitrary (noisy) inputs;
* pairwise averaging conserves mass and contracts the spread;
* extreme merging is commutative/associative/idempotent;
* selection heuristics always return the requested number of thresholds
  inside the domain;
* histogram merging conserves mass exactly;
* the error grid covers the domain.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.merge import merge_average, merge_extremes
from repro.core.selection import fill_unique, get_selection
from repro.fastsim.equidepth import merge_histograms
from repro.metrics.error import error_grid
from repro.rngs import make_rng

finite_values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
positive_values = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
fractions = st.floats(min_value=-0.5, max_value=1.5, allow_nan=False, allow_infinity=False)


def value_arrays(min_size=1, max_size=60, elements=finite_values):
    return arrays(np.float64, st.integers(min_size, max_size), elements=elements)


class TestEmpiricalCDFProperties:
    @given(value_arrays())
    def test_monotone_and_bounded(self, values):
        cdf = EmpiricalCDF(values)
        grid = np.linspace(values.min() - 1, values.max() + 1, 64)
        out = cdf.evaluate(grid)
        assert np.all(np.diff(out) >= 0)
        assert out[0] >= 0.0 and out[-1] == 1.0

    @given(value_arrays())
    def test_below_min_zero_at_max_one(self, values):
        cdf = EmpiricalCDF(values)
        assert cdf.evaluate(cdf.minimum - 1e-6) == 0.0
        assert cdf.evaluate(cdf.maximum) == 1.0

    @given(value_arrays(), st.floats(min_value=0.001, max_value=1.0))
    def test_quantile_galois(self, values, q):
        """quantile(q) is the smallest v with F(v) >= q."""
        cdf = EmpiricalCDF(values)
        v = cdf.quantile(q)[0]
        assert cdf.evaluate(v) >= q - 1e-12
        below = v - 1e-9 * max(abs(v), 1.0)
        if below >= cdf.minimum:
            assert cdf.evaluate(below) <= cdf.evaluate(v)


class TestEstimatedCDFProperties:
    @given(
        arrays(np.float64, st.integers(1, 30), elements=st.floats(0, 1000, allow_nan=False)),
        st.data(),
    )
    def test_monotone_bounded_for_noisy_fractions(self, thresholds, data):
        fracs = data.draw(
            arrays(np.float64, thresholds.size, elements=fractions)
        )
        lo = float(min(thresholds.min(), 0.0))
        hi = float(max(thresholds.max(), lo) + 1.0)
        est = EstimatedCDF(thresholds, fracs, lo, hi)
        grid = np.linspace(lo - 1, hi + 1, 64)
        out = est.evaluate(grid)
        assert np.all(np.diff(out) >= -1e-12)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert est.evaluate(lo - 0.5) == 0.0
        assert est.evaluate(hi) == 1.0


class TestMergeProperties:
    @given(value_arrays(min_size=2, max_size=20), st.data())
    def test_average_conserves_mass(self, a, data):
        b = data.draw(arrays(np.float64, a.size, elements=finite_values))
        merged = merge_average(a, b)
        assert np.allclose(2 * merged, a + b)

    @given(st.lists(st.tuples(finite_values, finite_values), min_size=2, max_size=6))
    def test_extremes_associative_commutative(self, pairs):
        pairs = [(min(a, b), max(a, b)) for a, b in pairs]
        forward = pairs[0]
        for p in pairs[1:]:
            forward = merge_extremes(forward, p)
        backward = pairs[-1]
        for p in reversed(pairs[:-1]):
            backward = merge_extremes(backward, p)
        assert forward == backward
        assert merge_extremes(forward, forward) == forward

    @given(value_arrays(min_size=4, max_size=32, elements=st.floats(0, 1, allow_nan=False)))
    def test_gossip_round_contracts_spread(self, values):
        """A full round of random pairwise averaging never widens the range."""
        rng = make_rng(0)
        state = values.copy()
        lo, hi = state.min(), state.max()
        for _ in range(3):
            i, j = rng.choice(state.size, size=2, replace=False)
            mean = (state[i] + state[j]) / 2
            state[i] = state[j] = mean
        assert state.min() >= lo - 1e-12
        assert state.max() <= hi + 1e-12


class TestSelectionProperties:
    @given(
        st.integers(min_value=2, max_value=40),
        arrays(np.float64, st.integers(2, 40), elements=st.floats(0, 10_000, allow_nan=False)),
    )
    def test_fill_unique_contract(self, lam, thresholds):
        lo, hi = 0.0, 10_000.0
        out = fill_unique(thresholds, lam, lo, hi)
        assert out.size == lam
        assert np.all(np.diff(out) >= 0)
        assert out.min() >= lo and out.max() <= hi

    @given(
        st.sampled_from(["hcut", "minmax", "lcut", "lcut_global"]),
        st.integers(min_value=3, max_value=25),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_refinement_contract(self, heuristic, lam, data):
        # Build an arbitrary monotone previous estimate.
        k = data.draw(st.integers(3, 12))
        raw_t = data.draw(arrays(np.float64, k, elements=st.floats(0, 1000, allow_nan=False)))
        raw_f = data.draw(arrays(np.float64, k, elements=st.floats(0, 1, allow_nan=False)))
        thresholds = np.sort(raw_t)
        previous = EstimatedCDF(thresholds, np.sort(raw_f), float(thresholds[0]), float(thresholds[-1]) + 1.0)
        out = get_selection(heuristic).select(lam, previous, make_rng(1))
        assert out.size == lam
        assert np.all(np.diff(out) >= 0)
        assert out.min() >= previous.minimum - 1e-9
        assert out.max() <= previous.maximum + 1e-9


class TestHistogramMergeProperties:
    @given(
        value_arrays(min_size=1, max_size=30, elements=st.floats(0, 1000, allow_nan=False)),
        value_arrays(min_size=1, max_size=30, elements=st.floats(0, 1000, allow_nan=False)),
        st.integers(min_value=2, max_value=20),
    )
    def test_mass_conserved_and_bounded(self, va, vb, bound):
        wa = np.full(va.size, 1.0 / va.size)
        wb = np.full(vb.size, 1.0 / vb.size)
        values, weights = merge_histograms(va, wa, vb, wb, bound)
        assert values.size <= bound
        assert weights.sum() == np.float64(1.0) or abs(weights.sum() - 1.0) < 1e-9
        assert np.all(np.diff(values) >= 0)
        assert values.min() >= min(va.min(), vb.min()) - 1e-9
        assert values.max() <= max(va.max(), vb.max()) + 1e-9


class TestErrorGridProperties:
    @given(finite_values, st.floats(min_value=0, max_value=1e5, allow_nan=False))
    def test_grid_covers_domain(self, lo, span):
        hi = lo + span
        grid = error_grid(lo, hi, max_points=5001)
        assert grid[0] <= lo + 1e-9
        assert grid[-1] >= hi - 1e-9
        assert grid.size <= 5001 + 2
        assert np.all(np.diff(grid) >= 0)
