"""Property tests for the polyline generalised inverse (service quantiles).

:func:`repro.core.interpolation.invert_polyline` is the binary-search
kernel behind :meth:`EstimatedCDF.quantile` and the service query layer.
Invariants:

* Galois connection on monotone polylines: ``quantile(cdf(x)) == x``
  wherever the CDF is strictly increasing, and in general ``quantile(q)``
  is the smallest ``x`` with ``F(x) >= q``;
* ``quantile`` is monotone non-decreasing in ``q``;
* results stay inside ``[minimum, maximum]``;
* flat CDF segments invert to their left edge (the *smallest* preimage).

Deterministic: hypothesis ``derandomize`` plus fixed ``make_rng`` seeds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdf import EstimatedCDF
from repro.core.interpolation import invert_polyline
from repro.errors import ProtocolError
from repro.rngs import make_rng

import pytest

DETERMINISTIC = settings(max_examples=60, deadline=None, derandomize=True)


def random_estimate(seed: int, points: int) -> EstimatedCDF:
    """A valid random estimate: sorted thresholds, monotone fractions."""
    rng = make_rng(seed)
    span = 1.0 + 999.0 * rng.random()
    lo = -500.0 + 1000.0 * rng.random()
    thresholds = np.sort(lo + span * rng.random(points))
    fractions = np.sort(rng.random(points))
    return EstimatedCDF(
        thresholds=thresholds,
        fractions=fractions,
        minimum=lo - 0.5 * span * rng.random(),
        maximum=lo + span * (1.0 + 0.5 * rng.random()),
    )


class TestGaloisConnection:
    @DETERMINISTIC
    @given(st.integers(0, 10_000), st.integers(3, 40))
    def test_quantile_cdf_round_trip_on_strict_polylines(self, seed, points):
        """quantile(cdf(x)) == x wherever the polyline strictly rises."""
        estimate = random_estimate(seed, points)
        xs, ys = estimate.polyline()
        rng = make_rng(seed + 1)
        probe = np.sort(
            rng.uniform(estimate.minimum, estimate.maximum, size=16)
        )
        levels = estimate.evaluate(probe)
        inverted = estimate.quantile(levels)
        # strictly-increasing neighbourhood <=> unique preimage
        strict = np.interp(probe + 1e-9, xs, ys) > np.interp(probe - 1e-9, xs, ys)
        scale = max(abs(estimate.minimum), abs(estimate.maximum), 1.0)
        assert np.all(
            np.abs(inverted[strict] - probe[strict]) <= 1e-6 * scale
        )

    @DETERMINISTIC
    @given(st.integers(0, 10_000), st.integers(3, 40))
    def test_quantile_is_smallest_preimage(self, seed, points):
        """F(quantile(q)) >= q, and nothing smaller reaches q."""
        estimate = random_estimate(seed, points)
        levels = np.linspace(0.0, 1.0, 21)
        values = estimate.quantile(levels)
        reached = estimate.evaluate(values)
        assert np.all(reached >= levels - 1e-9)
        scale = max(abs(estimate.minimum), abs(estimate.maximum), 1.0)
        below = values - 1e-6 * scale
        inside = below >= estimate.minimum
        assert np.all(
            estimate.evaluate(below[inside]) <= reached[inside] + 1e-12
        )


class TestMonotonicityAndBounds:
    @DETERMINISTIC
    @given(st.integers(0, 10_000), st.integers(3, 40))
    def test_quantile_monotone_in_q(self, seed, points):
        estimate = random_estimate(seed, points)
        rng = make_rng(seed + 2)
        levels = np.sort(rng.random(32))
        values = estimate.quantile(levels)
        assert np.all(np.diff(values) >= -1e-12)

    @DETERMINISTIC
    @given(st.integers(0, 10_000), st.integers(3, 40))
    def test_quantile_stays_inside_support(self, seed, points):
        estimate = random_estimate(seed, points)
        values = estimate.quantile(np.linspace(0.0, 1.0, 33))
        assert np.all(values >= estimate.minimum - 1e-12)
        assert np.all(values <= estimate.maximum + 1e-12)

    @DETERMINISTIC
    @given(st.integers(0, 10_000), st.integers(3, 40))
    def test_edge_levels_hit_the_extremes(self, seed, points):
        estimate = random_estimate(seed, points)
        assert estimate.quantile(0.0)[0] == pytest.approx(estimate.minimum)
        assert estimate.quantile(1.0)[0] == pytest.approx(estimate.maximum)


class TestFlatSegments:
    def test_flat_segment_inverts_to_left_edge(self):
        estimate = EstimatedCDF(
            thresholds=np.asarray([10.0, 20.0, 30.0]),
            fractions=np.asarray([0.5, 0.5, 0.5]),  # flat from 10 to 30
            minimum=0.0,
            maximum=40.0,
        )
        assert estimate.quantile(0.5)[0] == pytest.approx(10.0)

    def test_step_population_round_trips_through_levels(self):
        estimate = EstimatedCDF(
            thresholds=np.asarray([100.0, 200.0, 400.0]),
            fractions=np.asarray([0.3, 0.8, 0.95]),
            minimum=100.0,
            maximum=800.0,
        )
        for q, expected in ((0.3, 100.0), (0.8, 200.0), (0.95, 400.0), (1.0, 800.0)):
            assert estimate.quantile(q)[0] == pytest.approx(expected)


class TestValidation:
    def test_rejects_levels_outside_unit_interval(self):
        xs = np.asarray([0.0, 1.0])
        ys = np.asarray([0.0, 1.0])
        with pytest.raises(ProtocolError):
            invert_polyline(xs, ys, np.asarray([1.5]))
        with pytest.raises(ProtocolError):
            invert_polyline(xs, ys, np.asarray([-0.1]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ProtocolError):
            invert_polyline(
                np.asarray([0.0, 1.0]), np.asarray([0.0]), np.asarray([0.5])
            )

    def test_rejects_too_short_polylines(self):
        with pytest.raises(ProtocolError):
            invert_polyline(
                np.asarray([0.0]), np.asarray([0.0]), np.asarray([0.5])
            )
