"""Tests for partial views and node descriptors."""

import pytest

from repro.errors import OverlayError
from repro.rngs import make_rng
from repro.overlay.view import NodeDescriptor, PartialView


class TestNodeDescriptor:
    def test_aged(self):
        d = NodeDescriptor(1, age=2)
        assert d.aged().age == 3
        assert d.age == 2  # immutable

    def test_equality(self):
        assert NodeDescriptor(1, 0) == NodeDescriptor(1, 0)


class TestPartialView:
    def test_capacity_enforced(self):
        view = PartialView(capacity=3)
        for i in range(10):
            view.insert(NodeDescriptor(i, age=i))
        assert len(view) == 3
        # Freshest survive.
        assert set(view.node_ids()) == {0, 1, 2}

    def test_freshest_wins_dedup(self):
        view = PartialView(capacity=5)
        view.insert(NodeDescriptor(1, age=5))
        view.insert(NodeDescriptor(1, age=2))
        assert len(view) == 1
        assert view.descriptors()[0].age == 2

    def test_stale_does_not_overwrite(self):
        view = PartialView(capacity=5)
        view.insert(NodeDescriptor(1, age=2))
        view.insert(NodeDescriptor(1, age=7))
        assert view.descriptors()[0].age == 2

    def test_merge_excludes_self(self):
        view = PartialView(capacity=5)
        view.merge([NodeDescriptor(1, 0), NodeDescriptor(2, 0)], exclude=1)
        assert 1 not in view
        assert 2 in view

    def test_age_all(self):
        view = PartialView(capacity=3, descriptors=[NodeDescriptor(1, 0)])
        view.age_all()
        assert view.descriptors()[0].age == 1

    def test_oldest(self):
        view = PartialView(capacity=3)
        view.insert(NodeDescriptor(1, age=4))
        view.insert(NodeDescriptor(2, age=9))
        assert view.oldest().node_id == 2

    def test_oldest_empty_raises(self):
        with pytest.raises(OverlayError):
            PartialView(capacity=2).oldest()

    def test_random_member(self):
        view = PartialView(capacity=4, descriptors=[NodeDescriptor(i, 0) for i in range(4)])
        rng = make_rng(0)
        picks = {view.random(rng).node_id for _ in range(50)}
        assert picks == {0, 1, 2, 3}

    def test_random_empty_raises(self):
        with pytest.raises(OverlayError):
            PartialView(capacity=2).random(make_rng(0))

    def test_remove(self):
        view = PartialView(capacity=2, descriptors=[NodeDescriptor(1, 0)])
        view.remove(1)
        assert 1 not in view
        view.remove(99)  # no-op

    def test_invalid_capacity(self):
        with pytest.raises(OverlayError):
            PartialView(capacity=0)
