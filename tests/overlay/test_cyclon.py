"""Tests for the Cyclon shuffle overlay."""

import numpy as np
import pytest

from repro.errors import OverlayError
from repro.rngs import make_rng
from repro.overlay.cyclon import CyclonOverlay


@pytest.fixture()
def rng():
    return make_rng(88)


def make_overlay(n=60, capacity=8, rng=None, **kwargs):
    rng = rng or make_rng(88)
    return CyclonOverlay(list(range(n)), capacity=capacity, rng=rng, **kwargs)


class TestConstruction:
    def test_views_bounded(self, rng):
        overlay = make_overlay(rng=rng)
        for node in overlay.node_ids():
            assert 1 <= len(overlay.neighbours(node)) <= 8

    def test_validation(self, rng):
        with pytest.raises(OverlayError):
            CyclonOverlay([1], capacity=4, rng=rng)
        with pytest.raises(OverlayError):
            CyclonOverlay([1, 2], capacity=0, rng=rng)


class TestShuffle:
    def test_views_stay_bounded_and_self_free(self, rng):
        overlay = make_overlay(rng=rng)
        for _ in range(20):
            overlay.step(rng)
        for node in overlay.node_ids():
            neighbours = overlay.neighbours(node)
            assert len(neighbours) <= 8
            assert node not in neighbours

    def test_in_degree_roughly_uniform(self, rng):
        overlay = make_overlay(n=100, capacity=10, rng=rng)
        for _ in range(30):
            overlay.step(rng)
        degrees = np.asarray(list(overlay.in_degree_distribution().values()))
        assert degrees.min() >= 1
        assert degrees.std() < degrees.mean()  # no hubs, no starvation

    def test_dead_peers_purged(self, rng):
        overlay = make_overlay(n=60, capacity=8, rng=rng)
        for victim in range(15):
            overlay.remove_node(victim)
        for _ in range(20):
            overlay.step(rng)
        live = set(overlay.node_ids())
        dead_refs = sum(
            1 for node in live for peer in overlay.neighbours(node) if peer not in live
        )
        assert dead_refs == 0  # oldest-first contact detects every death

    def test_joiner_becomes_reachable(self, rng):
        overlay = make_overlay(rng=rng)
        overlay.add_node(999, bootstrap=[0, 1, 2])
        for _ in range(10):
            overlay.step(rng)
        assert overlay.in_degree_distribution()[999] > 0

    def test_select_neighbour(self, rng):
        overlay = make_overlay(rng=rng)
        peer = overlay.select_neighbour(0, rng)
        assert peer in overlay.node_ids()
        with pytest.raises(OverlayError):
            overlay.select_neighbour(12345, rng)

    def test_engine_integration(self, rng):
        """Cyclon works as the engine's membership substrate."""
        from repro.aggregation import AveragingProtocol
        from repro.simulation.runner import build_engine
        from repro.workloads.synthetic import uniform_workload

        protocol = AveragingProtocol(lambda node: node.values[:1])
        engine = build_engine(
            uniform_workload(0, 100), 50, [protocol], make_rng(9), overlay="cyclon", degree=8
        )
        engine.run(25)
        assert protocol.spread(engine) < 1.0
