"""Tests for the overlay implementations."""

import numpy as np
import pytest

from repro.errors import OverlayError
from repro.rngs import make_rng
from repro.overlay.bootstrap import bootstrap_ids
from repro.overlay.peer_sampling import PeerSamplingOverlay
from repro.overlay.random_graph import FullMeshOverlay, RandomGraphOverlay


@pytest.fixture()
def rng():
    return make_rng(77)


class TestFullMesh:
    def test_select_never_self(self, rng):
        overlay = FullMeshOverlay(list(range(10)))
        for _ in range(100):
            assert overlay.select_neighbour(3, rng) != 3

    def test_neighbours_everyone_else(self):
        overlay = FullMeshOverlay([0, 1, 2])
        assert set(overlay.neighbours(0)) == {1, 2}

    def test_selection_roughly_uniform(self, rng):
        overlay = FullMeshOverlay(list(range(5)))
        counts = {i: 0 for i in range(5)}
        for _ in range(4000):
            counts[overlay.select_neighbour(0, rng)] += 1
        assert counts[0] == 0
        for i in range(1, 5):
            assert 800 < counts[i] < 1200

    def test_add_remove(self, rng):
        overlay = FullMeshOverlay([0, 1])
        overlay.add_node(2)
        assert len(overlay) == 3
        overlay.remove_node(0)
        assert 0 not in overlay.node_ids()
        assert overlay.select_neighbour(1, rng) == 2

    def test_single_node_no_neighbour(self, rng):
        overlay = FullMeshOverlay([0])
        assert overlay.select_neighbour(0, rng) is None

    def test_unknown_node_raises(self, rng):
        with pytest.raises(OverlayError):
            FullMeshOverlay([0, 1]).select_neighbour(99, rng)


class TestRandomGraph:
    def test_degree_respected(self, rng):
        overlay = RandomGraphOverlay(list(range(50)), degree=7, rng=rng)
        for node in overlay.node_ids():
            assert len(overlay.neighbours(node)) == 7

    def test_no_self_links(self, rng):
        overlay = RandomGraphOverlay(list(range(30)), degree=5, rng=rng)
        for node in overlay.node_ids():
            assert node not in overlay.neighbours(node)

    def test_select_is_neighbour_or_live(self, rng):
        overlay = RandomGraphOverlay(list(range(20)), degree=4, rng=rng)
        peer = overlay.select_neighbour(0, rng)
        assert peer in overlay.node_ids()
        assert peer != 0

    def test_dead_link_repair(self, rng):
        overlay = RandomGraphOverlay(list(range(10)), degree=3, rng=rng)
        victims = overlay.neighbours(0)
        for victim in victims:
            overlay.remove_node(victim)
        peer = overlay.select_neighbour(0, rng)
        assert peer is not None
        assert peer in overlay.node_ids()

    def test_add_node_with_bootstrap(self, rng):
        overlay = RandomGraphOverlay(list(range(10)), degree=3, rng=rng)
        overlay.add_node(100, bootstrap=[0, 1, 2, 3])
        assert set(overlay.neighbours(100)) <= {0, 1, 2, 3}

    def test_too_small_rejected(self, rng):
        with pytest.raises(OverlayError):
            RandomGraphOverlay([0], degree=2, rng=rng)

    def test_invalid_degree(self, rng):
        with pytest.raises(OverlayError):
            RandomGraphOverlay([0, 1], degree=0, rng=rng)


class TestPeerSampling:
    def test_views_filled(self, rng):
        overlay = PeerSamplingOverlay(list(range(40)), capacity=8, rng=rng)
        for node in overlay.node_ids():
            assert 1 <= len(overlay.neighbours(node)) <= 8

    def test_step_keeps_views_fresh_under_churn(self, rng):
        overlay = PeerSamplingOverlay(list(range(40)), capacity=8, rng=rng)
        # Remove a quarter of nodes; dead descriptors must age out.
        for victim in range(10):
            overlay.remove_node(victim)
        for _ in range(15):
            overlay.step(rng)
        live = set(overlay.node_ids())
        dead_refs = sum(
            1 for node in live for peer in overlay.neighbours(node) if peer not in live
        )
        total_refs = sum(len(overlay.neighbours(node)) for node in live)
        assert dead_refs / total_refs < 0.05

    def test_join_becomes_reachable(self, rng):
        overlay = PeerSamplingOverlay(list(range(20)), capacity=6, rng=rng)
        overlay.add_node(100, bootstrap=[0, 1])
        for _ in range(10):
            overlay.step(rng)
        in_degrees = overlay.in_degree_distribution()
        assert in_degrees[100] > 0

    def test_connectivity_after_steps(self, rng):
        """The exchange graph stays connected (overlay health)."""
        import networkx as nx

        overlay = PeerSamplingOverlay(list(range(30)), capacity=6, rng=rng)
        for _ in range(10):
            overlay.step(rng)
        graph = nx.Graph()
        graph.add_nodes_from(overlay.node_ids())
        for node in overlay.node_ids():
            for peer in overlay.neighbours(node):
                if peer in overlay._views:
                    graph.add_edge(node, peer)
        assert nx.is_connected(graph)

    def test_select_skips_dead(self, rng):
        overlay = PeerSamplingOverlay(list(range(10)), capacity=9, rng=rng)
        for victim in range(1, 9):
            overlay.remove_node(victim)
        peer = overlay.select_neighbour(0, rng)
        assert peer is None or peer in overlay.node_ids()


class TestBootstrapIds:
    def test_count_and_distinct(self, rng):
        out = bootstrap_ids(list(range(100)), 5, rng)
        assert len(out) == 5
        assert len(set(out)) == 5

    def test_fewer_live_than_requested(self, rng):
        out = bootstrap_ids([1, 2], 10, rng)
        assert sorted(out) == [1, 2]

    def test_empty_rejected(self, rng):
        with pytest.raises(OverlayError):
            bootstrap_ids([], 3, rng)
