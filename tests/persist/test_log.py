"""The append-only snapshot log: framing, rotation, recovery invariants.

The heart of this file is the corruption sweep: for a small log we
mangle *every single byte* (flip, zero, 0xFF) and assert recovery never
crashes, never invents a snapshot, and only ever returns bit-identical
copies of records that were actually written.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.errors import PersistError
from repro.persist.codec import encode_snapshot
from repro.persist.log import (
    KIND_SNAPSHOT,
    MAX_RECORD_BYTES,
    RECORD_HEADER,
    RECORD_MAGIC,
    SEGMENT_HEADER,
    SEGMENT_MAGIC,
    SEGMENT_VERSION,
    RecoveredLog,
    SnapshotLog,
)

from tests.persist.conftest import make_snapshot


def polyline_bytes(snapshot) -> bytes:
    xs, ys = snapshot.estimate.polyline()
    return xs.tobytes() + ys.tobytes()


class TestAppendRecover:
    def test_round_trip_in_order(self, tmp_path):
        with SnapshotLog(tmp_path) as log:
            originals = [make_snapshot(v, offset=v) for v in (1, 2, 3)]
            for snapshot in originals:
                log.append_snapshot(snapshot)
        recovered = SnapshotLog(tmp_path).recover()
        assert [s.version for s in recovered.snapshots] == [1, 2, 3]
        for got, want in zip(recovered.snapshots, originals):
            assert polyline_bytes(got) == polyline_bytes(want)
        assert recovered.corrupt_records == 0
        assert recovered.truncated_bytes == 0

    def test_empty_directory_recovers_empty(self, tmp_path):
        recovered = SnapshotLog(tmp_path).recover()
        assert recovered == RecoveredLog()

    def test_rewritten_version_last_write_wins(self, tmp_path):
        with SnapshotLog(tmp_path) as log:
            log.append_snapshot(make_snapshot(1, offset=0.0))
            log.append_snapshot(make_snapshot(1, offset=99.0))
        recovered = SnapshotLog(tmp_path).recover()
        assert len(recovered.snapshots) == 1
        assert recovered.snapshots[0].estimate.minimum == 99.0

    def test_restart_markers_accumulate_as_max(self, tmp_path):
        with SnapshotLog(tmp_path) as log:
            log.append_restart(1)
            log.append_restart(3)
            log.append_restart(2)
        assert SnapshotLog(tmp_path).recover().restarts == 3

    def test_iteration_is_a_fresh_scan(self, tmp_path):
        log = SnapshotLog(tmp_path)
        log.append_snapshot(make_snapshot(1))
        assert [s.version for s in log] == [1]
        log.append_snapshot(make_snapshot(2))
        assert [s.version for s in log] == [1, 2]
        log.close()

    def test_recover_with_truncation_refused_while_writing(self, tmp_path):
        log = SnapshotLog(tmp_path)
        log.append_snapshot(make_snapshot(1))
        with pytest.raises(PersistError, match="before the first append"):
            log.recover()
        log.close()


class TestValidation:
    def test_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(PersistError, match="fsync"):
            SnapshotLog(tmp_path, fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "rotate", "never"])
    def test_every_policy_round_trips(self, tmp_path, policy):
        with SnapshotLog(tmp_path / policy, fsync=policy) as log:
            log.append_snapshot(make_snapshot(1))
        recovered = SnapshotLog(tmp_path / policy).recover()
        assert [s.version for s in recovered.snapshots] == [1]

    def test_tiny_max_segment_bytes_rejected(self, tmp_path):
        with pytest.raises(PersistError, match="max_segment_bytes"):
            SnapshotLog(tmp_path, max_segment_bytes=4)

    def test_negative_restart_count_rejected(self, tmp_path):
        with SnapshotLog(tmp_path) as log:
            with pytest.raises(PersistError):
                log.append_restart(-1)

    def test_oversized_record_rejected(self, tmp_path, monkeypatch):
        with SnapshotLog(tmp_path) as log:
            monkeypatch.setattr(
                "repro.persist.log.encode_snapshot",
                lambda snapshot: b"\x00" * (MAX_RECORD_BYTES + 1),
            )
            with pytest.raises(PersistError, match="record budget"):
                log.append_snapshot(make_snapshot(1))

    def test_alien_file_in_directory(self, tmp_path):
        (tmp_path / "segment-nothex.a2sl").write_bytes(b"?")
        with pytest.raises(PersistError, match="alien"):
            SnapshotLog(tmp_path)

    def test_alien_segment_magic(self, tmp_path):
        with SnapshotLog(tmp_path) as log:
            log.append_snapshot(make_snapshot(1))
        path = SnapshotLog(tmp_path).segment_paths()[0]
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(PersistError, match="magic"):
            SnapshotLog(tmp_path).recover()


class TestRotation:
    def test_segments_rotate_at_the_size_threshold(self, tmp_path):
        with SnapshotLog(tmp_path, max_segment_bytes=600) as log:
            for version in range(1, 11):
                log.append_snapshot(make_snapshot(version))
            assert len(log.segment_paths()) > 1
        recovered = SnapshotLog(tmp_path).recover()
        assert [s.version for s in recovered.snapshots] == list(range(1, 11))

    def test_reopened_log_appends_a_new_segment(self, tmp_path):
        with SnapshotLog(tmp_path) as log:
            log.append_snapshot(make_snapshot(1))
        with SnapshotLog(tmp_path) as log:
            log.append_snapshot(make_snapshot(2))
            assert len(log.segment_paths()) == 2
        recovered = SnapshotLog(tmp_path).recover()
        assert [s.version for s in recovered.snapshots] == [1, 2]


class TestTornTail:
    def _written(self, tmp_path, n=3):
        with SnapshotLog(tmp_path) as log:
            for version in range(1, n + 1):
                log.append_snapshot(make_snapshot(version, offset=version))
        (path,) = SnapshotLog(tmp_path).segment_paths()
        return path

    def test_torn_payload_is_truncated(self, tmp_path):
        path = self._written(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # crash mid-payload of record 3
        log = SnapshotLog(tmp_path)
        recovered = log.recover()
        assert [s.version for s in recovered.snapshots] == [1, 2]
        assert recovered.truncated_bytes > 0
        assert recovered.corrupt_records == 0
        # the torn bytes are physically gone: appends restart cleanly
        log.append_snapshot(make_snapshot(9))
        log.close()
        again = SnapshotLog(tmp_path).recover()
        assert [s.version for s in again.snapshots] == [1, 2, 9]
        assert again.truncated_bytes == 0

    def test_torn_header_is_truncated(self, tmp_path):
        path = self._written(tmp_path, n=2)
        data = path.read_bytes()
        # leave 5 bytes of the second record's 12-byte header
        first_len = self._record_span(data, SEGMENT_HEADER.size)
        path.write_bytes(data[: SEGMENT_HEADER.size + first_len + 5])
        recovered = SnapshotLog(tmp_path).recover(truncate_torn_tail=False)
        assert [s.version for s in recovered.snapshots] == [1]
        assert recovered.truncated_bytes == 5

    @staticmethod
    def _record_span(data: bytes, offset: int) -> int:
        _magic, _kind, _reserved, length, _crc = RECORD_HEADER.unpack_from(
            data, offset
        )
        return RECORD_HEADER.size + length

    def test_crc_corruption_is_skipped_not_fatal(self, tmp_path):
        path = self._written(tmp_path)
        data = bytearray(path.read_bytes())
        # flip one payload byte of the *first* record
        data[SEGMENT_HEADER.size + RECORD_HEADER.size + 3] ^= 0xFF
        path.write_bytes(bytes(data))
        recovered = SnapshotLog(tmp_path).recover()
        assert [s.version for s in recovered.snapshots] == [2, 3]
        assert recovered.corrupt_records == 1
        assert recovered.truncated_bytes == 0

    def test_corrupt_length_tears_the_rest(self, tmp_path):
        path = self._written(tmp_path)
        data = bytearray(path.read_bytes())
        # lie about the first record's length: the announced boundary no
        # longer holds a record magic, so the remainder is torn
        struct.pack_into("<I", data, SEGMENT_HEADER.size + 4, 11)
        path.write_bytes(bytes(data))
        recovered = SnapshotLog(tmp_path).recover(truncate_torn_tail=False)
        assert recovered.snapshots == []
        assert recovered.truncated_bytes > 0


class TestEveryByteMangled:
    """Flip every byte of a real log; recovery must stay safe throughout."""

    @pytest.mark.parametrize("mangle", [
        lambda b: b ^ 0xFF,
        lambda b: 0x00,
        lambda b: 0xFF,
    ], ids=["flip", "zero", "ones"])
    def test_single_byte_corruption_never_crashes_or_lies(self, tmp_path, mangle):
        originals = [make_snapshot(v, offset=v, points=3) for v in (1, 2)]
        with SnapshotLog(tmp_path) as log:
            for snapshot in originals:
                log.append_snapshot(snapshot)
            log.append_restart(1)
        (path,) = SnapshotLog(tmp_path).segment_paths()
        pristine = path.read_bytes()
        fingerprints = {
            s.version: polyline_bytes(s) for s in originals
        }
        for index in range(len(pristine)):
            mutated = bytearray(pristine)
            if mangle(mutated[index]) == mutated[index]:
                continue
            mutated[index] = mangle(mutated[index])
            path.write_bytes(bytes(mutated))
            log = SnapshotLog(tmp_path)
            try:
                recovered = log.recover(truncate_torn_tail=False)
            except PersistError:
                # acceptable only for an unusable *file format* (the
                # segment header), never inside the record stream
                assert index < SEGMENT_HEADER.size, (
                    f"byte {index}: recovery raised for in-stream corruption"
                )
                continue
            # Never crash with anything else; never invent data: every
            # recovered snapshot is bit-identical to one that was written.
            for snapshot in recovered.snapshots:
                assert snapshot.version in fingerprints, (
                    f"byte {index}: recovered unknown version {snapshot.version}"
                )
                assert polyline_bytes(snapshot) == fingerprints[snapshot.version], (
                    f"byte {index}: silently wrong polyline for v{snapshot.version}"
                )
            # Loss is never silent: a flipped byte may tear everything
            # after it (a lying record boundary cannot be trusted), but
            # then the corruption counters say so.
            lost = len(originals) - len(recovered.snapshots)
            if lost > 0 or recovered.restarts != 1:
                assert (
                    recovered.corrupt_records > 0 or recovered.truncated_bytes > 0
                ), f"byte {index}: data lost with no corruption reported"
        path.write_bytes(pristine)


class TestCompaction:
    def test_compaction_keeps_requested_versions_in_order(self, tmp_path):
        log = SnapshotLog(tmp_path, max_segment_bytes=600)
        for version in range(1, 11):
            log.append_snapshot(make_snapshot(version, offset=version))
        log.append_restart(4)
        dropped = log.compact({2, 5, 9, 10}, restarts=4)
        assert dropped == 6
        recovered = log.recover(truncate_torn_tail=False)
        assert [s.version for s in recovered.snapshots] == [2, 5, 9, 10]
        assert recovered.restarts == 4
        assert len(log.segment_paths()) == 1
        log.close()

    def test_compaction_folds_restart_markers(self, tmp_path):
        log = SnapshotLog(tmp_path)
        log.append_restart(2)
        log.append_restart(5)
        log.compact(set(), restarts=3)
        # the marker trail folds into one record carrying the max
        assert log.recover(truncate_torn_tail=False).restarts == 5
        log.close()

    def test_compacted_log_accepts_appends(self, tmp_path):
        log = SnapshotLog(tmp_path)
        for version in (1, 2, 3):
            log.append_snapshot(make_snapshot(version))
        log.compact({3}, restarts=1)
        log.append_snapshot(make_snapshot(4))
        log.close()
        recovered = SnapshotLog(tmp_path).recover()
        assert [s.version for s in recovered.snapshots] == [3, 4]


class TestWireFormat:
    def test_segment_header_layout_is_stable(self, tmp_path):
        with SnapshotLog(tmp_path) as log:
            log.append_snapshot(make_snapshot(1))
        (path,) = SnapshotLog(tmp_path).segment_paths()
        data = path.read_bytes()
        assert data[:4] == SEGMENT_MAGIC
        assert data[4] == SEGMENT_VERSION
        magic, kind, _reserved, length, crc = RECORD_HEADER.unpack_from(
            data, SEGMENT_HEADER.size
        )
        assert magic == RECORD_MAGIC
        assert kind == KIND_SNAPSHOT
        payload_start = SEGMENT_HEADER.size + RECORD_HEADER.size
        payload = data[payload_start : payload_start + length]
        assert zlib.crc32(payload) == crc
        assert payload == encode_snapshot(
            SnapshotLog(tmp_path).recover(truncate_torn_tail=False).snapshots[0]
        )
