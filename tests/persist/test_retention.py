"""Time-faded retention: full recent fidelity, exponential thinning, pins."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PersistError
from repro.persist.retention import RetentionPolicy


class TestValidation:
    def test_rejects_zero_keep_last(self):
        with pytest.raises(PersistError):
            RetentionPolicy(keep_last=0)

    def test_rejects_base_below_two(self):
        with pytest.raises(PersistError):
            RetentionPolicy(base=1)


class TestRetained:
    def test_everything_recent_is_kept(self):
        policy = RetentionPolicy(keep_last=8)
        versions = list(range(1, 9))
        assert policy.retained(versions) == set(versions)

    def test_exponential_thinning_by_generation(self):
        # keep_last=4, base=2: ages 0-3 kept, ages [4,8) keep their
        # newest, ages [8,16) keep their newest, and so on.
        policy = RetentionPolicy(keep_last=4, base=2)
        kept = sorted(policy.retained(range(1, 41)))
        assert kept == [8, 24, 32, 36, 37, 38, 39, 40]

    def test_gaps_do_not_accelerate_decay(self):
        # Age is positional: a previously-compacted log (sparse versions)
        # decays at the same rate as a dense one.
        policy = RetentionPolicy(keep_last=2, base=2)
        dense = policy.retained(range(1, 7))
        sparse = policy.retained([10, 20, 30, 40, 50, 60])
        assert len(dense) == len(sparse)

    def test_pinned_versions_are_exempt_from_thinning(self):
        policy = RetentionPolicy(keep_last=2, base=2)
        kept = policy.retained(range(1, 41), pinned=[3, 17])
        assert {3, 17} <= kept
        unpinned = policy.retained(range(1, 41))
        assert kept - {3, 17} == unpinned - {3, 17}

    def test_duplicates_and_order_do_not_matter(self):
        policy = RetentionPolicy(keep_last=3)
        shuffled = [5, 1, 3, 2, 4, 4, 1]
        assert policy.retained(shuffled) == policy.retained([1, 2, 3, 4, 5])

    def test_empty_input(self):
        assert RetentionPolicy().retained([]) == set()

    @settings(max_examples=100, deadline=None)
    @given(
        versions=st.lists(st.integers(min_value=1, max_value=10_000), max_size=200),
        keep_last=st.integers(min_value=1, max_value=16),
        base=st.integers(min_value=2, max_value=5),
    )
    def test_invariants(self, versions, keep_last, base):
        policy = RetentionPolicy(keep_last=keep_last, base=base)
        kept = policy.retained(versions)
        distinct = sorted(set(versions), reverse=True)
        # retained is a subset of the input
        assert kept <= set(distinct)
        # the newest keep_last versions always survive
        assert set(distinct[:keep_last]) <= kept
        # cost is O(keep_last + log(age)): generations are bounded
        if distinct:
            ages = len(distinct)
            generations = 0
            bound = keep_last
            while bound < ages:
                generations += 1
                bound *= base
            assert len(kept) <= keep_last + generations

    @settings(max_examples=50, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=100),
        pin=st.integers(min_value=1, max_value=100),
    )
    def test_pin_always_survives(self, count, pin):
        policy = RetentionPolicy(keep_last=1, base=2)
        versions = list(range(1, count + 1))
        pinned = [min(pin, count)]
        assert set(pinned) <= policy.retained(versions, pinned=pinned)
