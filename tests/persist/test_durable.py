"""DurableEstimateStore: recovery parity, write-behind, degradation."""

from __future__ import annotations

import json

import pytest

from repro.errors import PersistError
from repro.obs import ObserverHub
from repro.persist import DurableEstimateStore, RetentionPolicy, SnapshotLog
from repro.service.store import EstimateStore

from tests.persist.conftest import make_snapshot


def publish(store: EstimateStore, *, offset: float = 0.0) -> None:
    template = make_snapshot(offset=offset)
    store.publish(
        template.estimate,
        backend=template.backend,
        n_nodes=template.n_nodes,
        instances=template.instances,
        rounds=template.rounds,
        size_estimate=template.size_estimate,
        published_tick=store.published_total + 1,
    )


def polylines(store: EstimateStore) -> dict[int, bytes]:
    out = {}
    for version in store.versions():
        xs, ys = store.get(version).estimate.polyline()
        out[version] = xs.tobytes() + ys.tobytes()
    return out


class TestRecoveryParity:
    def test_restart_recovers_identical_snapshots(self, tmp_path):
        first = EstimateStore(max_history=16)
        with DurableEstimateStore(first, SnapshotLog(tmp_path)) as durable:
            for offset in (0.0, 1.5, 3.0):
                publish(first, offset=offset)
            assert durable.restarts == 1
            assert durable.recovered_snapshots == 0
            before = polylines(first)

        second = EstimateStore(max_history=16)
        recovered = DurableEstimateStore(second, SnapshotLog(tmp_path))
        # The contract: bit-identical, not numerically close.
        assert polylines(second) == before
        assert second.latest().version == first.latest().version
        assert recovered.recovered_snapshots == 3
        assert recovered.restarts == 2
        assert recovered.corrupt_records == 0
        assert recovered.truncated_bytes == 0
        recovered.close()

    def test_version_counter_resumes_past_recovery(self, tmp_path):
        first = EstimateStore()
        with DurableEstimateStore(first, SnapshotLog(tmp_path)):
            publish(first)
            publish(first)
        second = EstimateStore()
        with DurableEstimateStore(second, SnapshotLog(tmp_path)):
            publish(second)
            assert second.latest().version == 3

    def test_restart_counter_survives_many_generations(self, tmp_path):
        for generation in range(1, 5):
            store = EstimateStore()
            with DurableEstimateStore(store, SnapshotLog(tmp_path)) as durable:
                assert durable.restarts == generation
                publish(store)

    def test_corruption_is_surfaced_not_fatal(self, tmp_path):
        store = EstimateStore()
        with DurableEstimateStore(store, SnapshotLog(tmp_path)):
            publish(store)
            publish(store)
        (path,) = SnapshotLog(tmp_path).segment_paths()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip the final payload byte
        path.write_bytes(bytes(data))
        fresh = EstimateStore()
        durable = DurableEstimateStore(fresh, SnapshotLog(tmp_path))
        assert durable.recovered_snapshots == 1
        assert durable.corrupt_records == 1
        assert fresh.versions() == [1]
        durable.close()

    def test_recovery_clock_is_injectable(self, tmp_path):
        ticks = iter([10.0, 10.25, 99.0])
        durable = DurableEstimateStore(
            EstimateStore(),
            SnapshotLog(tmp_path),
            clock=lambda: next(ticks),
        )
        assert durable.recovery_s == 0.25
        durable.close()


class TestWriteBehind:
    def test_publish_counters(self, tmp_path):
        hub = ObserverHub()
        store = EstimateStore()
        with DurableEstimateStore(store, SnapshotLog(tmp_path), hub=hub):
            publish(store)
            publish(store)
        metrics = hub.metrics
        assert metrics.counter("persist_snapshots_written_total").snapshot() == 2
        assert metrics.counter("persist_bytes_written_total").snapshot() > 0
        assert metrics.counter("persist_restarts_total").snapshot() == 1
        assert metrics.counter("persist_write_errors_total").snapshot() == 0
        assert metrics.counter("persist_snapshots_recovered_total").snapshot() == 0

    def test_recovery_counters(self, tmp_path):
        store = EstimateStore()
        with DurableEstimateStore(store, SnapshotLog(tmp_path)):
            publish(store)
        hub = ObserverHub()
        with DurableEstimateStore(EstimateStore(), SnapshotLog(tmp_path), hub=hub):
            pass
        metrics = hub.metrics
        assert metrics.counter("persist_snapshots_recovered_total").snapshot() == 1
        assert metrics.gauge("persist_recovery_s").snapshot() >= 0.0
        assert metrics.gauge("persist_segments").snapshot() >= 1.0

    def test_disk_failure_degrades_durability_not_serving(self, tmp_path, monkeypatch):
        hub = ObserverHub()
        store = EstimateStore()
        durable = DurableEstimateStore(store, SnapshotLog(tmp_path), hub=hub)

        def explode(snapshot):
            raise PersistError("disk on fire")

        monkeypatch.setattr(durable.log, "append_snapshot", explode)
        publish(store)  # must not raise through the subscriber
        assert store.latest().version == 1  # serving path intact
        assert durable.write_errors == 1
        assert (
            hub.metrics.counter("persist_write_errors_total").snapshot() == 1
        )
        assert durable.info()["write_errors"] == 1
        durable.close()

    def test_close_detaches_from_the_feed(self, tmp_path):
        store = EstimateStore()
        durable = DurableEstimateStore(store, SnapshotLog(tmp_path))
        publish(store)
        durable.close()
        publish(store)  # after close: not logged
        assert len(SnapshotLog(tmp_path).recover().snapshots) == 1


class TestCompaction:
    def test_automatic_compaction_applies_retention(self, tmp_path):
        hub = ObserverHub()
        store = EstimateStore(max_history=32)
        durable = DurableEstimateStore(
            store,
            SnapshotLog(tmp_path, max_segment_bytes=600),
            retention=RetentionPolicy(keep_last=2, base=2),
            compact_every=4,
            hub=hub,
        )
        for _ in range(8):
            publish(store)
        assert hub.metrics.counter("persist_compactions_total").snapshot() >= 1
        assert hub.metrics.counter("persist_snapshots_retired_total").snapshot() > 0
        durable.close()
        recovered = SnapshotLog(tmp_path).recover()
        logged = {s.version for s in recovered.snapshots}
        assert {7, 8} <= logged  # keep_last window intact
        assert len(logged) < 8  # old generations thinned
        assert recovered.restarts == 1  # marker survives the rewrite

    def test_pinned_version_survives_compaction(self, tmp_path):
        store = EstimateStore(max_history=32)
        durable = DurableEstimateStore(
            store,
            SnapshotLog(tmp_path),
            retention=RetentionPolicy(keep_last=1, base=2),
            compact_every=0,
        )
        for _ in range(10):
            publish(store)
        store.pin(2)
        durable.compact()
        durable.close()
        logged = {s.version for s in SnapshotLog(tmp_path).recover().snapshots}
        assert 2 in logged
        assert 10 in logged
        assert 5 not in logged

    def test_compact_every_zero_disables_automatic_compaction(self, tmp_path):
        hub = ObserverHub()
        store = EstimateStore(max_history=32)
        with DurableEstimateStore(
            store, SnapshotLog(tmp_path), compact_every=0, hub=hub
        ):
            for _ in range(6):
                publish(store)
        assert hub.metrics.counter("persist_compactions_total").snapshot() == 0
        assert len(SnapshotLog(tmp_path).recover().snapshots) == 6

    def test_negative_compact_every_rejected(self, tmp_path):
        with pytest.raises(PersistError, match="compact_every"):
            DurableEstimateStore(
                EstimateStore(), SnapshotLog(tmp_path), compact_every=-1
            )


class TestInfo:
    def test_info_is_json_serialisable_and_complete(self, tmp_path):
        store = EstimateStore()
        with DurableEstimateStore(store, SnapshotLog(tmp_path)) as durable:
            publish(store)
            info = json.loads(json.dumps(durable.info()))
        assert info["restarts"] == 1
        assert info["fsync"] == "rotate"
        assert info["segments"] == 1
        assert info["size_bytes"] > 0
        assert info["retention"] == {"keep_last": 8, "base": 2}
        assert set(info) == {
            "root", "fsync", "restarts", "recovered_snapshots", "recovery_s",
            "corrupt_records", "truncated_bytes", "write_errors", "segments",
            "size_bytes", "retention",
        }
