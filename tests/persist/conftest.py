"""Shared factories for the persistence tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cdf import EstimatedCDF
from repro.service.store import EstimateSnapshot


def make_snapshot(
    version: int = 1,
    *,
    points: int = 5,
    offset: float = 0.0,
    system_size: float | None = 100.0,
    size_estimate: float | None = 100.0,
    confidence: tuple[float, float] | None = None,
    published_at: float | None = None,
    restarted: bool = False,
    divergence: float | None = None,
    backend: str = "fast",
) -> EstimateSnapshot:
    thresholds = np.linspace(10.0, 90.0, points) + offset
    fractions = np.linspace(0.1, 0.9, points)
    estimate = EstimatedCDF(
        thresholds=thresholds,
        fractions=fractions,
        minimum=0.0 + offset,
        maximum=100.0 + offset,
        system_size=system_size,
    )
    return EstimateSnapshot(
        version=version,
        estimate=estimate,
        backend=backend,
        n_nodes=100,
        instances=1,
        rounds=25,
        size_estimate=size_estimate,
        confidence=confidence,
        published_tick=version,
        published_at=published_at,
        restarted=restarted,
        divergence=divergence,
    )


@pytest.fixture
def snapshot() -> EstimateSnapshot:
    return make_snapshot()
