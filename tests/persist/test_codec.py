"""Snapshot codec: bit-identical round trips, strict structural validation."""

from __future__ import annotations

import struct
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PersistError
from repro.persist.codec import PAYLOAD_VERSION, decode_snapshot, encode_snapshot

from tests.persist.conftest import make_snapshot


def assert_round_trips(snapshot) -> None:
    decoded = decode_snapshot(encode_snapshot(snapshot))
    assert decoded.version == snapshot.version
    assert decoded.backend == snapshot.backend
    assert decoded.n_nodes == snapshot.n_nodes
    assert decoded.instances == snapshot.instances
    assert decoded.rounds == snapshot.rounds
    assert decoded.size_estimate == snapshot.size_estimate
    assert decoded.confidence == snapshot.confidence
    assert decoded.published_tick == snapshot.published_tick
    assert decoded.published_at == snapshot.published_at
    assert decoded.restarted == snapshot.restarted
    assert decoded.divergence == snapshot.divergence
    # The serving contract: the recovered polyline is *bit-identical*,
    # not merely numerically close.
    xs0, ys0 = snapshot.estimate.polyline()
    xs1, ys1 = decoded.estimate.polyline()
    assert xs0.tobytes() == xs1.tobytes()
    assert ys0.tobytes() == ys1.tobytes()
    assert decoded.estimate.minimum == snapshot.estimate.minimum
    assert decoded.estimate.maximum == snapshot.estimate.maximum
    assert decoded.estimate.system_size == snapshot.estimate.system_size


class TestRoundTrip:
    def test_plain_snapshot(self, snapshot):
        assert_round_trips(snapshot)

    def test_every_optional_field_combination(self):
        for mask in range(1 << 5):
            assert_round_trips(make_snapshot(
                version=mask + 1,
                system_size=123.5 if mask & 1 else None,
                size_estimate=99.25 if mask & 2 else None,
                confidence=(0.01, 0.02) if mask & 4 else None,
                published_at=1.75e9 if mask & 8 else None,
                divergence=0.125 if mask & 16 else None,
                restarted=bool(mask & 1),
            ))

    def test_unicode_backend_name(self):
        assert_round_trips(make_snapshot(backend="fást-β"))

    @settings(max_examples=50, deadline=None)
    @given(
        version=st.integers(min_value=1, max_value=2**40),
        points=st.integers(min_value=2, max_value=64),
        offset=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        restarted=st.booleans(),
        divergence=st.one_of(
            st.none(),
            st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
    )
    def test_hypothesis_round_trip(self, version, points, offset, restarted, divergence):
        assert_round_trips(make_snapshot(
            version,
            points=points,
            offset=offset,
            restarted=restarted,
            divergence=divergence,
        ))


class TestStrictDecoding:
    def test_every_truncation_raises_cleanly(self, snapshot):
        payload = encode_snapshot(snapshot)
        for cut in range(len(payload)):
            with pytest.raises(PersistError):
                decode_snapshot(payload[:cut])

    def test_trailing_bytes_are_rejected(self, snapshot):
        with pytest.raises(PersistError, match="trailing"):
            decode_snapshot(encode_snapshot(snapshot) + b"\x00")

    def test_unknown_payload_version(self, snapshot):
        payload = bytearray(encode_snapshot(snapshot))
        payload[0] = PAYLOAD_VERSION + 1
        with pytest.raises(PersistError, match="version"):
            decode_snapshot(bytes(payload))

    def test_unknown_flags(self, snapshot):
        payload = bytearray(encode_snapshot(snapshot))
        payload[1] |= 0x80
        with pytest.raises(PersistError, match="flags"):
            decode_snapshot(bytes(payload))

    def test_nonpositive_version_is_rejected(self):
        payload = bytearray(encode_snapshot(make_snapshot(1)))
        struct.pack_into("<q", payload, 2, 0)
        with pytest.raises(PersistError, match="version 0"):
            decode_snapshot(bytes(payload))

    def test_implausible_point_count_never_allocates(self, snapshot):
        payload = bytearray(encode_snapshot(snapshot))
        # the point count sits right after the fixed header + backend
        offset = struct.calcsize("<BBqqqII") + 2 + len(snapshot.backend)
        struct.pack_into("<I", payload, offset, 1 << 30)
        with pytest.raises(PersistError, match="points"):
            decode_snapshot(bytes(payload))

    def test_non_utf8_backend(self, snapshot):
        payload = bytearray(encode_snapshot(snapshot))
        offset = struct.calcsize("<BBqqqII") + 2
        payload[offset] = 0xFF
        with pytest.raises(PersistError):
            decode_snapshot(bytes(payload))

    def test_mismatched_arrays_refuse_to_encode(self):
        # EstimatedCDF itself rejects mismatched arrays, so forge a bare
        # estimate-shaped object to reach the codec's own guard.
        broken = make_snapshot(1)
        fake = SimpleNamespace(
            thresholds=np.asarray([1.0, 2.0]),
            fractions=np.asarray([0.5]),
            minimum=0.0,
            maximum=3.0,
            system_size=None,
        )
        object.__setattr__(broken, "estimate", fake)
        with pytest.raises(PersistError, match="mismatched"):
            encode_snapshot(broken)
