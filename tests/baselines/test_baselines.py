"""Tests for the baseline estimators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rngs import make_rng
from repro.baselines.equidepth import EquiDepthProtocol
from repro.baselines.sampling import RandomSamplingEstimator
from repro.simulation.runner import build_engine
from repro.workloads.synthetic import step_workload, uniform_workload


@pytest.fixture()
def rng():
    return make_rng(55)


class TestRandomSampling:
    def test_error_shrinks_with_samples(self, rng):
        population = uniform_workload(0, 1000).sample(10_000, rng)
        estimator = RandomSamplingEstimator(population)
        small = estimator.estimate(20, rng)
        large = estimator.estimate(5_000, rng)
        assert large.errors.maximum < small.errors.maximum

    def test_dkw_scale(self, rng):
        """KS error of s samples is near the DKW envelope ~1.36/sqrt(s)."""
        population = uniform_workload(0, 1000).sample(50_000, rng)
        estimator = RandomSamplingEstimator(population)
        results = estimator.sweep([400], rng, repeats=10)
        assert results[0].errors.maximum < 3 * 1.36 / np.sqrt(400)
        assert results[0].errors.maximum > 0.3 / np.sqrt(400)

    def test_message_cost_model(self, rng):
        population = uniform_workload(0, 100).sample(100, rng)
        estimator = RandomSamplingEstimator(population, messages_per_sample=3)
        result = estimator.estimate(50, rng)
        assert result.messages == 150
        assert result.bytes_sent == 150 * 64

    def test_step_cdf_handled(self, rng):
        population = step_workload([10.0, 20.0], weights=[0.7, 0.3]).sample(5_000, rng)
        estimator = RandomSamplingEstimator(population)
        result = estimator.estimate(2_000, rng)
        assert result.errors.maximum < 0.05

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            RandomSamplingEstimator(np.asarray([]))
        estimator = RandomSamplingEstimator(np.asarray([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            estimator.estimate(0, rng)
        with pytest.raises(ConfigurationError):
            RandomSamplingEstimator(np.asarray([1.0]), messages_per_sample=0)

    def test_sweep_repeats_average(self, rng):
        population = uniform_workload(0, 100).sample(2_000, rng)
        estimator = RandomSamplingEstimator(population)
        out = estimator.sweep([10, 100], rng, repeats=4)
        assert [r.samples for r in out] == [10, 100]
        assert out[0].errors.maximum > out[1].errors.maximum


class TestEquiDepthProtocol:
    def test_runs_on_engine(self, rng):
        protocol = EquiDepthProtocol(synopsis_size=20)
        engine = build_engine(uniform_workload(0, 1000), 150, [protocol], rng, overlay="mesh")
        engine.run(20)
        estimates = protocol.estimates(engine)
        assert len(estimates) == 150
        truth_mid = 0.5
        mid = np.mean([est.evaluate(np.asarray([500.0]))[0] for est in estimates[:20]])
        assert abs(mid - truth_mid) < 0.15

    def test_phase_reset(self, rng):
        protocol = EquiDepthProtocol(synopsis_size=10)
        engine = build_engine(uniform_workload(0, 100), 50, [protocol], rng, overlay="mesh")
        engine.run(10)
        protocol.start_phase(engine)
        node = next(iter(engine.nodes.values()))
        values, weights = node.state[protocol.name]
        assert values.size == 1
        assert weights.sum() == pytest.approx(1.0)

    def test_synopsis_bounded(self, rng):
        protocol = EquiDepthProtocol(synopsis_size=10)
        engine = build_engine(uniform_workload(0, 100), 60, [protocol], rng, overlay="mesh")
        engine.run(15)
        for node in engine.nodes.values():
            values, weights = node.state[protocol.name]
            assert values.size <= 10
            assert weights.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EquiDepthProtocol(synopsis_size=1)
