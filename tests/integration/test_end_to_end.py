"""End-to-end integration tests across substrates.

These run the full stack — workloads → overlay → engine → Adam2 →
metrics — and assert the paper's core functional claims at small scale.
"""

import numpy as np
import pytest

from repro.core import Adam2Config, Adam2Protocol, EmpiricalCDF
from repro.baselines.equidepth import EquiDepthProtocol
from repro.metrics import aggregate_errors
from repro.rngs import make_rng
from repro.simulation import ReplacementChurn, build_engine
from repro.workloads import boinc_ram_mb
from repro.workloads.synthetic import lognormal_workload


class TestAdam2OnEngine:
    @pytest.mark.parametrize("overlay", ["mesh", "random", "sampling"])
    def test_estimation_on_each_overlay(self, overlay):
        rng = make_rng(42)
        config = Adam2Config(points=20, rounds_per_instance=25)
        protocol = Adam2Protocol(config, scheduler="manual")
        engine = build_engine(boinc_ram_mb(), 150, [protocol], rng, overlay=overlay, degree=12)
        protocol.trigger_instance(engine)
        engine.run(26)
        truth = EmpiricalCDF(engine.attribute_values())
        estimates = protocol.estimates(engine)
        assert len(estimates) == 150
        errors = aggregate_errors(truth, estimates[:25])
        assert errors.maximum < 0.5
        assert errors.average < 0.1

    def test_refinement_improves_over_instances(self):
        rng = make_rng(43)
        config = Adam2Config(points=25, rounds_per_instance=25, selection="minmax")
        protocol = Adam2Protocol(config, scheduler="manual")
        engine = build_engine(boinc_ram_mb(), 200, [protocol], rng)
        errors = []
        for _ in range(3):
            protocol.trigger_instance(engine)
            engine.run(26)
            truth = EmpiricalCDF(engine.attribute_values())
            errors.append(aggregate_errors(truth, protocol.estimates(engine)[:20]).maximum)
        assert errors[-1] < errors[0]

    def test_probabilistic_scheduler_starts_instances(self):
        rng = make_rng(44)
        config = Adam2Config(
            points=10, rounds_per_instance=10, instance_frequency=2, initial_size_estimate=10.0
        )
        protocol = Adam2Protocol(config, scheduler="probabilistic")
        engine = build_engine(lognormal_workload(), 60, [protocol], rng)
        engine.run(20)
        assert len(protocol.started_instances) >= 1
        # Eventually everyone holds an estimate.
        engine.run(30)
        assert len(protocol.estimates(engine)) == 60

    def test_concurrent_instances_are_isolated(self):
        rng = make_rng(45)
        config = Adam2Config(points=10, rounds_per_instance=25)
        protocol = Adam2Protocol(config, scheduler="manual")
        engine = build_engine(lognormal_workload(), 120, [protocol], rng)
        first = protocol.trigger_instance(engine)
        engine.run(5)
        second = protocol.trigger_instance(engine)
        assert first != second
        engine.run(30)
        # Both instances completed at every node; each node's history has
        # two entries.
        for adam2 in protocol.adam2_nodes(engine):
            completed_ids = {c.instance_id for c in adam2.completed}
            assert first in completed_ids and second in completed_ids

    def test_churned_nodes_bootstrap(self):
        rng = make_rng(46)
        workload = lognormal_workload()
        config = Adam2Config(points=10, rounds_per_instance=20)
        protocol = Adam2Protocol(config, scheduler="manual")
        churn = ReplacementChurn(0.01, workload, make_rng(99))
        engine = build_engine(workload, 150, [protocol], rng, churn=churn)
        protocol.trigger_instance(engine)
        engine.run(21)
        protocol.trigger_instance(engine)
        engine.run(21)
        assert churn.replaced > 0
        with_estimate = len(protocol.estimates(engine))
        assert with_estimate > 140  # nearly all, including churned-in nodes


class TestSideBySideProtocols:
    def test_adam2_and_equidepth_share_engine(self):
        rng = make_rng(47)
        adam2 = Adam2Protocol(Adam2Config(points=15, rounds_per_instance=20), scheduler="manual")
        equidepth = EquiDepthProtocol(synopsis_size=15)
        engine = build_engine(boinc_ram_mb(), 120, [adam2, equidepth], rng)
        adam2.trigger_instance(engine)
        engine.run(21)
        truth = EmpiricalCDF(engine.attribute_values())
        adam2_errors = aggregate_errors(truth, adam2.estimates(engine)[:15])
        equidepth_errors = aggregate_errors(truth, equidepth.estimates(engine)[:15])
        # At matched budget EquiDepth should not beat Adam2's averages by
        # much; typically Adam2 is already comparable after one instance.
        assert adam2_errors.average < max(2 * equidepth_errors.average, 0.05)


class TestCostIntegration:
    def test_traffic_matches_model_during_instance(self):
        rng = make_rng(48)
        config = Adam2Config(points=50, rounds_per_instance=25)
        protocol = Adam2Protocol(config, scheduler="manual")
        engine = build_engine(lognormal_workload(), 100, [protocol], rng)
        protocol.trigger_instance(engine)
        engine.run(25)
        summary = engine.network.summary(engine.node_count)
        expected = 2 * 25 * config.message_bytes()  # 2 msgs/round x 25 rounds
        assert summary.bytes_per_node == pytest.approx(expected, rel=0.25)
