"""Integration tests that pin the paper's headline claims (small scale).

The benchmark suite reproduces every figure; these tests keep the core
claims under ``pytest tests/`` so a plain test run already certifies the
reproduction's substance.
"""

import numpy as np
import pytest

from repro import Adam2Config, Adam2Simulation, boinc_cpu_mflops, boinc_ram_mb
from repro.fastsim.equidepth import EquiDepthSimulation
from repro.metrics.convergence import fit_exponential_rate


class TestExponentialConvergence:
    """§VII-A: error at interpolation points decays exponentially."""

    def test_rate_is_exponential(self):
        sim = Adam2Simulation(
            boinc_ram_mb(), 400, Adam2Config(points=20, rounds_per_instance=40), seed=2
        )
        result = sim.run_instance(track=True)
        trace = result.trace
        rounds = np.asarray(trace.rounds[5:], dtype=float)
        errors = np.asarray(trace.max_points[5:], dtype=float)
        rate = fit_exponential_rate(rounds, errors, floor=1e-12)
        assert rate < 0.7  # error shrinks by >30% per round

    def test_nearly_identical_estimates(self):
        """All peers generate nearly identical CDF approximations."""
        sim = Adam2Simulation(
            boinc_ram_mb(), 300, Adam2Config(points=20, rounds_per_instance=30), seed=3
        )
        result = sim.run_instance()
        assert result.fractions.std(axis=0).max() < 1e-5


class TestHeadlineAccuracy:
    """Abstract: Err_m ~ 2%, Err_a ~ 0.05-0.1% after 3 instances, λ=50.

    At laptop scale (1,500 nodes vs the paper's 100,000) we hold the same
    order of magnitude: Err_m below 6% with MinMax and Err_a below 0.5%
    with LCut on the stepped RAM attribute after four instances.
    """

    def test_ram_minmax_maximum_error(self):
        sim = Adam2Simulation(
            boinc_ram_mb(), 1_500,
            Adam2Config(points=50, rounds_per_instance=30, selection="minmax"), seed=4,
        )
        run = sim.run_instances(4)
        assert run.final_errors.maximum < 0.06

    def test_ram_lcut_average_error(self):
        sim = Adam2Simulation(
            boinc_ram_mb(), 1_500,
            Adam2Config(points=50, rounds_per_instance=30, selection="lcut"), seed=4,
        )
        run = sim.run_instances(4)
        assert run.final_errors.average < 0.005

    def test_cpu_smooth_easy(self):
        sim = Adam2Simulation(
            boinc_cpu_mflops(), 1_000,
            Adam2Config(points=50, rounds_per_instance=30, selection="lcut"), seed=4,
        )
        run = sim.run_instances(3)
        assert run.final_errors.maximum < 0.03
        assert run.final_errors.average < 0.002


class TestBeatsEquiDepth:
    """§VII-C: Adam2 outperforms EquiDepth after a few instances."""

    def test_maximum_error_gap(self):
        adam2 = Adam2Simulation(
            boinc_ram_mb(), 800,
            Adam2Config(points=50, rounds_per_instance=25, selection="minmax"), seed=5,
        )
        adam2_err = adam2.run_instances(4).final_errors.maximum
        equidepth = EquiDepthSimulation(boinc_ram_mb(), 800, synopsis_size=50, seed=5)
        equidepth_err = equidepth.run_phases(4, rounds=25)[-1].errors_entire.maximum
        assert adam2_err < 0.6 * equidepth_err

    def test_average_error_gap(self):
        adam2 = Adam2Simulation(
            boinc_ram_mb(), 800,
            Adam2Config(points=50, rounds_per_instance=25, selection="lcut"), seed=5,
        )
        adam2_err = adam2.run_instances(4).final_errors.average
        equidepth = EquiDepthSimulation(boinc_ram_mb(), 800, synopsis_size=50, seed=5)
        equidepth_err = equidepth.run_phases(4, rounds=25)[-1].errors_entire.average
        assert adam2_err < 0.7 * equidepth_err


class TestChurnResilience:
    """§VII-G: accuracy survives the paper's reference churn."""

    def test_reference_churn(self):
        sim = Adam2Simulation(
            boinc_ram_mb(), 600,
            Adam2Config(points=30, rounds_per_instance=30, selection="minmax"),
            seed=6, churn_rate=0.001,
        )
        sim.run_instances(4)
        errors = sim.system_errors()
        assert errors.maximum < 0.2
        assert errors.average < 0.05


class TestSizeIndependentCost:
    """§VII-I: per-node traffic does not grow with N."""

    def test_bytes_per_node_flat(self):
        costs = []
        for n in (200, 800):
            sim = Adam2Simulation(
                boinc_ram_mb(), n, Adam2Config(points=50, rounds_per_instance=25), seed=7
            )
            result = sim.run_instance()
            costs.append(result.bytes_total / n)
        assert abs(costs[0] - costs[1]) < 0.2 * costs[0]
