"""Application-level integration tests over the monitor facade.

These mirror the paper's §I motivating applications end-to-end through
the public API: load-balance detection, outlier flagging by global rank,
and ordered slicing — all computed from the decentralised estimate, then
audited against ground truth.
"""

import numpy as np
import pytest

from repro.core.cdf import EmpiricalCDF
from repro.core.config import Adam2Config
from repro.monitor import DistributionMonitor
from repro.workloads.base import SampledWorkload
from repro.workloads.synthetic import lognormal_workload, normal_workload


def build_monitor(workload, n=150, seed=3, **config_kwargs):
    defaults = dict(
        points=20, rounds_per_instance=20, instance_frequency=3,
        initial_size_estimate=30.0, verification_points=10, selection="lcut",
    )
    defaults.update(config_kwargs)
    monitor = DistributionMonitor(
        workload=workload, n_nodes=n, config=Adam2Config(**defaults), seed=seed
    )
    monitor.advance_until_estimate(max_rounds=500)
    monitor.advance(45)  # a couple more instances for refinement
    return monitor


class TestLoadBalanceView:
    def test_balanced_system_low_dispersion(self):
        monitor = build_monitor(normal_workload(mean=100.0, std=10.0))
        view = monitor.snapshot()
        assert view.interquantile_ratio(0.5, 0.9) < 1.5

    def test_skewed_system_detected(self):
        monitor = build_monitor(lognormal_workload(median=100.0, sigma=1.5))
        view = monitor.snapshot()
        assert view.interquantile_ratio(0.5, 0.9) > 2.0


class TestRankAndSlice:
    def test_ranks_audit_against_truth(self):
        monitor = build_monitor(lognormal_workload(median=200.0, sigma=0.8))
        view = monitor.snapshot()
        truth = EmpiricalCDF(monitor.true_values())
        for q in (0.1, 0.5, 0.9):
            value = float(truth.quantile(q)[0])
            assert view.rank_of(value) == pytest.approx(q, abs=0.1)

    def test_slices_partition_population(self):
        monitor = build_monitor(normal_workload(mean=500.0, std=100.0))
        view = monitor.snapshot()
        values = monitor.true_values()
        slices = np.asarray([view.slice_of(v, slices=4) for v in values])
        counts = np.bincount(slices, minlength=4)
        # Roughly equal-population slices (within simulation noise).
        assert counts.min() > len(values) / 8

    def test_extreme_value_lands_in_top_slice(self):
        monitor = build_monitor(lognormal_workload(median=100.0, sigma=0.5))
        view = monitor.snapshot()
        assert view.slice_of(1e9, slices=10) == 9
        assert view.slice_of(0.0, slices=10) == 0


class TestSizeAndConfidence:
    def test_size_estimate_tracks_population(self):
        monitor = build_monitor(normal_workload(), n=120)
        view = monitor.snapshot()
        assert view.system_size == pytest.approx(120, rel=0.25)

    def test_confidence_published(self):
        monitor = build_monitor(normal_workload())
        view = monitor.snapshot()
        assert view.confidence_avg is not None
        assert 0.0 <= view.confidence_avg <= 1.0
        assert view.confidence_max >= view.confidence_avg


class TestTraceWorkload:
    def test_monitor_over_fixed_trace(self):
        """A monitor over a concrete host census (SampledWorkload)."""
        rng = np.random.default_rng(0)
        census = np.rint(rng.lognormal(np.log(512), 0.7, size=400))
        monitor = build_monitor(SampledWorkload(census, name="census"), n=150)
        view = monitor.snapshot()
        truth = EmpiricalCDF(monitor.true_values())
        probe = float(np.median(census))
        assert view.fraction_below(probe) == pytest.approx(
            float(truth.evaluate(probe)), abs=0.1
        )
